"""Parser for the script and trace text formats.

The concrete syntax follows the paper's figures:

.. code-block:: text

    @type script
    # Test rename___rename_emptydir___nonemptydir
    mkdir "emptydir" 0o777
    open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
    rename "emptydir" "nonemptydir"

Commands may carry a ``pN:`` process prefix (default process 1).
Process creation/destruction are ``@process create pN uid=U gid=G`` and
``@process destroy pN`` directives.  Trace files use ``@type trace``;
call lines may carry a ``N:`` line-number prefix and are each followed by
a return-value line (``RV_none``, ``RV_num(3)``, an errno name, ...).
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.core import commands as C
from repro.core.errors import Errno
from repro.core.flags import SeekWhence, parse_open_flags
from repro.core.labels import (OsCall, OsCreate, OsDestroy, OsLabel,
                               OsReturn, OsSignal, OsSpin)
from repro.core.values import (Err, Ok, ReturnValue, RvBytes, RvDirEntry,
                               RvNone, RvNum, RvStat, Stat)
from repro.core.flags import FileKind
from repro.script.ast import (CreateEvent, DestroyEvent, Script, ScriptItem,
                              ScriptStep, Trace, TraceEvent)


class ParseError(ValueError):
    """A malformed script or trace file."""

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)


# -- tokenizing ----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>"(?:\\.|[^"\\])*")   |
        (?P<flags>\[[A-Z_;\s]*\])       |
        (?P<word>[^\s"\[\]]+)
    )""", re.VERBOSE)


def _tokenize(text: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"cannot tokenize: {text[pos:]!r}")
        tokens.append(match.group(0).strip())
        pos = match.end()
    return tokens


def _unquote(token: str) -> str:
    if not (token.startswith('"') and token.endswith('"')):
        raise ParseError(f"expected quoted string, got {token!r}")
    body = token[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise ParseError(f"expected integer, got {token!r}") from None


# -- command parsing --------------------------------------------------------------

def parse_command(text: str) -> C.OsCommand:
    """Parse one command line (without pid / line-number prefixes)."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty command")
    keyword, args = tokens[0], tokens[1:]

    def arity(n: int) -> None:
        if len(args) != n:
            raise ParseError(
                f"{keyword} expects {n} argument(s), got {len(args)}")

    if keyword == "mkdir":
        arity(2)
        return C.Mkdir(_unquote(args[0]), _int(args[1]))
    if keyword == "rmdir":
        arity(1)
        return C.Rmdir(_unquote(args[0]))
    if keyword == "unlink":
        arity(1)
        return C.Unlink(_unquote(args[0]))
    if keyword == "open":
        if len(args) == 2:
            return C.Open(_unquote(args[0]), parse_open_flags(args[1]))
        arity(3)
        return C.Open(_unquote(args[0]), parse_open_flags(args[1]),
                      _int(args[2]))
    if keyword == "close":
        arity(1)
        return C.Close(_int(args[0]))
    if keyword == "link":
        arity(2)
        return C.Link(_unquote(args[0]), _unquote(args[1]))
    if keyword == "rename":
        arity(2)
        return C.Rename(_unquote(args[0]), _unquote(args[1]))
    if keyword == "symlink":
        arity(2)
        return C.Symlink(_unquote(args[0]), _unquote(args[1]))
    if keyword == "readlink":
        arity(1)
        return C.Readlink(_unquote(args[0]))
    if keyword == "stat":
        arity(1)
        return C.StatCmd(_unquote(args[0]))
    if keyword == "lstat":
        arity(1)
        return C.LstatCmd(_unquote(args[0]))
    if keyword == "truncate":
        arity(2)
        return C.Truncate(_unquote(args[0]), _int(args[1]))
    if keyword == "read":
        arity(2)
        return C.Read(_int(args[0]), _int(args[1]))
    if keyword == "write":
        arity(2)
        return C.Write(_int(args[0]), _unquote(args[1]).encode("utf-8"))
    if keyword == "pread":
        arity(3)
        return C.Pread(_int(args[0]), _int(args[1]), _int(args[2]))
    if keyword == "pwrite":
        arity(3)
        return C.Pwrite(_int(args[0]), _unquote(args[1]).encode("utf-8"),
                        _int(args[2]))
    if keyword == "lseek":
        arity(3)
        try:
            whence = SeekWhence(args[2])
        except ValueError:
            raise ParseError(f"bad whence: {args[2]!r}") from None
        return C.Lseek(_int(args[0]), _int(args[1]), whence)
    if keyword == "opendir":
        arity(1)
        return C.Opendir(_unquote(args[0]))
    if keyword == "readdir":
        arity(1)
        return C.Readdir(_int(args[0]))
    if keyword == "rewinddir":
        arity(1)
        return C.Rewinddir(_int(args[0]))
    if keyword == "closedir":
        arity(1)
        return C.Closedir(_int(args[0]))
    if keyword == "chdir":
        arity(1)
        return C.Chdir(_unquote(args[0]))
    if keyword == "chmod":
        arity(2)
        return C.Chmod(_unquote(args[0]), _int(args[1]))
    if keyword == "chown":
        arity(3)
        return C.Chown(_unquote(args[0]), _int(args[1]), _int(args[2]))
    if keyword == "umask":
        arity(1)
        return C.Umask(_int(args[0]))
    raise ParseError(f"unknown command: {keyword!r}")


# -- return-value parsing -----------------------------------------------------------

_STAT_RE = re.compile(
    r"RV_stat\(\{kind=(?P<kind>\w+); size=(?P<size>\d+); "
    r"nlink=(?P<nlink>-|\d+); uid=(?P<uid>\d+); gid=(?P<gid>\d+); "
    r"mode=0o(?P<mode>[0-7]+)\}\)")


def parse_return(text: str) -> ReturnValue:
    """Parse one return-value line of a trace."""
    text = text.strip()
    if text == "RV_none":
        return Ok(RvNone())
    if text == "RV_end_of_dir":
        return Ok(RvDirEntry(None))
    if text.startswith("RV_num(") and text.endswith(")"):
        return Ok(RvNum(_int(text[len("RV_num("):-1])))
    if text.startswith("RV_bytes(") and text.endswith(")"):
        literal = text[len("RV_bytes("):-1]
        return Ok(RvBytes(_parse_py_string(literal).encode("utf-8")))
    if text.startswith("RV_entry(") and text.endswith(")"):
        literal = text[len("RV_entry("):-1]
        return Ok(RvDirEntry(_parse_py_string(literal)))
    match = _STAT_RE.fullmatch(text)
    if match:
        nlink = None if match.group("nlink") == "-" else \
            int(match.group("nlink"))
        return Ok(RvStat(Stat(
            kind=FileKind(match.group("kind")),
            size=int(match.group("size")),
            nlink=nlink,
            uid=int(match.group("uid")),
            gid=int(match.group("gid")),
            mode=int(match.group("mode"), 8),
        )))
    try:
        return Err(Errno[text])
    except KeyError:
        raise ParseError(f"cannot parse return value: {text!r}") from None


def _parse_py_string(literal: str) -> str:
    """Parse the printer's ``repr``-style string literal.

    The printer renders byte payloads via :func:`repr`, which escapes
    non-printable characters (``\\x00``, ``\\n``, …); decoding with
    :func:`ast.literal_eval` inverts every escape, so traces carrying
    e.g. NUL-padded read results round-trip exactly — which the
    process-pool backend (workers exchange trace text) and the
    RunArtifact JSON format depend on.
    """
    literal = literal.strip()
    if len(literal) >= 2 and literal[0] == literal[-1] and \
            literal[0] in "'\"":
        try:
            value = ast.literal_eval(literal)
        except (ValueError, SyntaxError):
            raise ParseError(
                f"malformed string literal: {literal!r}") from None
        if isinstance(value, str):
            return value
    raise ParseError(f"expected string literal, got {literal!r}")


# -- file parsing -----------------------------------------------------------------

_PID_PREFIX = re.compile(r"^p(\d+):\s*")
_LINE_NO_PREFIX = re.compile(r"^(\d+):\s*")
_CREATE_RE = re.compile(
    r"^@process\s+create\s+p(\d+)\s+uid=(\d+)\s+gid=(\d+)\s*$")
_DESTROY_RE = re.compile(r"^@process\s+destroy\s+p(\d+)\s*$")
_SIGNAL_RE = re.compile(r"^p(\d+):\s*!signal\s+(\w+)\s*$")
_SPIN_RE = re.compile(r"^p(\d+):\s*!spin\s*$")


def _split_pid(text: str) -> Tuple[int, str]:
    match = _PID_PREFIX.match(text)
    if match:
        return int(match.group(1)), text[match.end():]
    return 1, text


def _header_and_lines(text: str, expected: str) -> Tuple[str, List[Tuple[int, str]]]:
    name = ""
    lines: List[Tuple[int, str]] = []
    saw_type = False
    for idx, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("@type"):
            kind = line[len("@type"):].strip()
            if kind != expected:
                raise ParseError(
                    f"expected '@type {expected}', got {kind!r}", idx)
            saw_type = True
            continue
        if line.startswith("#"):
            comment = line.lstrip("#").strip()
            if comment.startswith("Test ") and not name:
                name = comment[len("Test "):].strip()
            continue
        lines.append((idx, line))
    if not saw_type:
        raise ParseError(f"missing '@type {expected}' header")
    return name, lines


def parse_script(text: str, name: str = "") -> Script:
    """Parse a script file into a :class:`Script`."""
    parsed_name, lines = _header_and_lines(text, "script")
    items: List[ScriptItem] = []
    for line_no, line in lines:
        match = _CREATE_RE.match(line)
        if match:
            items.append(CreateEvent(pid=int(match.group(1)),
                                     uid=int(match.group(2)),
                                     gid=int(match.group(3))))
            continue
        match = _DESTROY_RE.match(line)
        if match:
            items.append(DestroyEvent(pid=int(match.group(1))))
            continue
        pid, rest = _split_pid(line)
        try:
            cmd = parse_command(rest)
        except ParseError as exc:
            raise ParseError(str(exc), line_no) from None
        items.append(ScriptStep(pid=pid, cmd=cmd))
    return Script(name=name or parsed_name or "unnamed",
                  items=tuple(items))


def parse_trace(text: str, name: str = "") -> Trace:
    """Parse a trace file into a :class:`Trace`."""
    parsed_name, lines = _header_and_lines(text, "trace")
    events: List[TraceEvent] = []
    pending_pid: Optional[int] = None
    # Event numbering: call lines carry an explicit "N:" prefix (the
    # executor's event counter); other events continue from the last
    # number.  This makes parse(print(trace)) preserve event numbers.
    counter = 0

    def next_no(explicit: Optional[int] = None) -> int:
        nonlocal counter
        counter = explicit if explicit is not None else counter + 1
        return counter

    for line_no, line in lines:
        match = _CREATE_RE.match(line)
        if match:
            events.append(TraceEvent(next_no(), OsCreate(
                pid=int(match.group(1)), uid=int(match.group(2)),
                gid=int(match.group(3)))))
            continue
        match = _DESTROY_RE.match(line)
        if match:
            events.append(TraceEvent(
                next_no(), OsDestroy(pid=int(match.group(1)))))
            continue
        match = _SIGNAL_RE.match(line)
        if match:
            events.append(TraceEvent(next_no(), OsSignal(
                pid=int(match.group(1)), signal=match.group(2))))
            pending_pid = None
            continue
        match = _SPIN_RE.match(line)
        if match:
            events.append(TraceEvent(
                next_no(), OsSpin(pid=int(match.group(1)))))
            pending_pid = None
            continue
        lineno_match = _LINE_NO_PREFIX.match(line)
        body = line[lineno_match.end():] if lineno_match else line
        pid, rest = _split_pid(body)
        if lineno_match or _looks_like_command(rest):
            try:
                cmd = parse_command(rest)
            except ParseError as exc:
                raise ParseError(str(exc), line_no) from None
            explicit = int(lineno_match.group(1)) if lineno_match \
                else None
            events.append(TraceEvent(next_no(explicit),
                                     OsCall(pid=pid, cmd=cmd)))
            pending_pid = pid
            continue
        try:
            ret = parse_return(rest)
        except ParseError as exc:
            raise ParseError(str(exc), line_no) from None
        events.append(TraceEvent(
            next_no(), OsReturn(pid=pending_pid if pending_pid is not None
                                else pid, ret=ret)))
        pending_pid = None
    return Trace(name=name or parsed_name or "unnamed",
                 events=tuple(events))


_COMMAND_KEYWORDS = frozenset({
    "close", "closedir", "link", "lseek", "lstat", "mkdir", "open",
    "opendir", "pread", "pwrite", "read", "readdir", "readlink", "rename",
    "rewinddir", "rmdir", "stat", "symlink", "truncate", "unlink", "write",
    "chdir", "chmod", "chown", "umask",
})


def _looks_like_command(text: str) -> bool:
    head = text.split(None, 1)[0] if text.split() else ""
    return head in _COMMAND_KEYWORDS
