"""Abstract syntax of test scripts and traces."""

from __future__ import annotations

import dataclasses
from typing import List, Tuple, Union

from repro.core.commands import OsCommand, command_name
from repro.core.labels import OsLabel


@dataclasses.dataclass(frozen=True)
class ScriptStep:
    """One scripted libc call, issued by process ``pid``."""

    pid: int
    cmd: OsCommand


@dataclasses.dataclass(frozen=True)
class CreateEvent:
    """Directive: create a worker process with the given credentials.

    The executor's analogue of the paper's per-process workers with
    generated real/effective ids (section 6.2).
    """

    pid: int
    uid: int
    gid: int


@dataclasses.dataclass(frozen=True)
class DestroyEvent:
    """Directive: destroy a worker process."""

    pid: int


ScriptItem = Union[ScriptStep, CreateEvent, DestroyEvent]


@dataclasses.dataclass(frozen=True)
class Script:
    """A test script: a name and a sequence of steps/directives.

    Scripts are grouped by the libc function they target (used for
    indexing and for the per-function test counts of section 6.1).
    """

    name: str
    items: Tuple[ScriptItem, ...]

    @property
    def target_function(self) -> str:
        """The function this script targets: that of its *last* call."""
        for item in reversed(self.items):
            if isinstance(item, ScriptStep):
                return command_name(item.cmd)
        return "none"

    def call_count(self) -> int:
        return sum(1 for item in self.items
                   if isinstance(item, ScriptStep))


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One event of an observed trace: a label plus its source line."""

    line_no: int
    label: OsLabel


@dataclasses.dataclass(frozen=True)
class Trace:
    """An observed trace: a name and a sequence of labelled events."""

    name: str
    events: Tuple[TraceEvent, ...]

    def labels(self) -> List[OsLabel]:
        return [event.label for event in self.events]
