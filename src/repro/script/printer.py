"""Printers for scripts and traces (inverse of the parser)."""

from __future__ import annotations

from typing import List

from repro.core.labels import (OsCall, OsCreate, OsDestroy, OsReturn,
                               OsSignal, OsSpin)
from repro.script.ast import (CreateEvent, DestroyEvent, Script, ScriptStep,
                              Trace)


def print_script(script: Script) -> str:
    """Render a :class:`Script` in the file format of paper Fig. 2."""
    lines: List[str] = ["@type script", f"# Test {script.name}"]
    for item in script.items:
        if isinstance(item, CreateEvent):
            lines.append(f"@process create p{item.pid} uid={item.uid} "
                         f"gid={item.gid}")
        elif isinstance(item, DestroyEvent):
            lines.append(f"@process destroy p{item.pid}")
        else:
            assert isinstance(item, ScriptStep)
            prefix = f"p{item.pid}: " if item.pid != 1 else ""
            lines.append(prefix + item.cmd.render())
    return "\n".join(lines) + "\n"


def print_trace(trace: Trace) -> str:
    """Render a :class:`Trace` in the file format of paper Fig. 3."""
    lines: List[str] = ["@type trace", f"# Test {trace.name}"]
    for event in trace.events:
        label = event.label
        if isinstance(label, OsCreate):
            lines.append(f"@process create p{label.pid} uid={label.uid} "
                         f"gid={label.gid}")
        elif isinstance(label, OsDestroy):
            lines.append(f"@process destroy p{label.pid}")
        elif isinstance(label, OsCall):
            prefix = f"p{label.pid}: " if label.pid != 1 else ""
            lines.append(f"{event.line_no}: {prefix}{label.cmd.render()}")
        elif isinstance(label, OsReturn):
            prefix = f"p{label.pid}: " if label.pid != 1 else ""
            lines.append(prefix + label.ret.render())
        elif isinstance(label, OsSignal):
            lines.append(f"p{label.pid}: !signal {label.signal}")
        elif isinstance(label, OsSpin):
            lines.append(f"p{label.pid}: !spin")
        else:
            raise TypeError(f"unprintable label: {label!r}")
    return "\n".join(lines) + "\n"
