"""Test-script and trace file formats (paper Figs. 2-4).

A *script* is a sequence of commands used to drive a file system under
test; a *trace* interleaves the commands with the observed return values.
Both have a line-oriented text syntax with ``@type script`` / ``@type
trace`` headers, a parser, and a printer; ``parse . print`` is the
identity (property-tested).
"""

from repro.script.ast import (CreateEvent, DestroyEvent, Script, ScriptStep,
                              Trace, TraceEvent)
from repro.script.parser import (ParseError, parse_command, parse_return,
                                 parse_script, parse_trace)
from repro.script.printer import print_script, print_trace

__all__ = [
    "Script", "ScriptStep", "CreateEvent", "DestroyEvent", "Trace",
    "TraceEvent",
    "ParseError", "parse_command", "parse_return", "parse_script",
    "parse_trace",
    "print_script", "print_trace",
]
