"""Labels of the labelled transition system (the paper's ``os_label``).

A trace is a sequence of labels.  Besides the five label forms of the
paper's model (CALL, RETURN, CREATE, DESTROY, TAU) we include two
*observation-only* labels produced by the test executor when the system
under test misbehaves at the process level: :class:`OsSignal` (a process
was killed by a signal, e.g. the OS X ``pwrite`` SIGXFSZ defect of section
7.3.4) and :class:`OsSpin` (a process entered an unkillable busy loop,
e.g. the OpenZFS-on-OSX defect of Fig. 8).  The model allows neither, so
the checker reports them as deviations with a dedicated diagnosis.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.core.commands import OsCommand, command_name
from repro.core.values import ReturnValue, render_return


@dataclasses.dataclass(frozen=True)
class OsCall:
    """Process ``pid`` invokes a libc command."""

    pid: int
    cmd: OsCommand

    def render(self) -> str:
        return f"p{self.pid}: {self.cmd.render()}"


@dataclasses.dataclass(frozen=True)
class OsReturn:
    """A value (or error) is returned to process ``pid``."""

    pid: int
    ret: ReturnValue

    def render(self) -> str:
        return f"p{self.pid}: {render_return(self.ret)}"


@dataclasses.dataclass(frozen=True)
class OsCreate:
    """A new process is created with the given credentials."""

    pid: int
    uid: int
    gid: int

    def render(self) -> str:
        return f"@process create p{self.pid} uid={self.uid} gid={self.gid}"


@dataclasses.dataclass(frozen=True)
class OsDestroy:
    """Process ``pid`` is destroyed."""

    pid: int

    def render(self) -> str:
        return f"@process destroy p{self.pid}"


@dataclasses.dataclass(frozen=True)
class OsTau:
    """An internal system transition (a pending call takes effect)."""

    def render(self) -> str:
        return "tau"


@dataclasses.dataclass(frozen=True)
class OsSignal:
    """Observation: the system under test killed ``pid`` with a signal."""

    pid: int
    signal: str

    def render(self) -> str:
        return f"p{self.pid}: !signal {self.signal}"


@dataclasses.dataclass(frozen=True)
class OsSpin:
    """Observation: ``pid`` entered an unkillable busy loop."""

    pid: int

    def render(self) -> str:
        return f"p{self.pid}: !spin"


OsLabel = Union[OsCall, OsReturn, OsCreate, OsDestroy, OsTau, OsSignal, OsSpin]


def label_function(label: OsLabel) -> str | None:
    """The libc function a CALL label targets, or None for other labels."""
    if isinstance(label, OsCall):
        return command_name(label.cmd)
    return None
