"""Core types of the SibylFS model: errors, values, commands, labels,
platform parameterisation, the specification monad, and coverage
instrumentation.
"""

from repro.core.errors import Errno, errno_by_name
from repro.core.flags import (FileKind, OpenFlag, SeekWhence,
                              parse_open_flags, print_open_flags)
from repro.core.values import (Err, Ok, ReturnValue, RvBytes, RvDirEntry,
                               RvNone, RvNum, RvStat, Special, Stat,
                               render_return)
from repro.core.commands import OsCommand, command_name
from repro.core.labels import (OsCall, OsCreate, OsDestroy, OsLabel,
                               OsReturn, OsSignal, OsSpin, OsTau)
from repro.core.platform import (FREEBSD_SPEC, LINUX_SPEC, OSX_SPEC,
                                 POSIX_SPEC, PlatformSpec, spec_by_name,
                                 with_timestamps, without_permissions)

__all__ = [
    "Errno", "errno_by_name",
    "FileKind", "OpenFlag", "SeekWhence", "parse_open_flags",
    "print_open_flags",
    "Err", "Ok", "ReturnValue", "RvBytes", "RvDirEntry", "RvNone", "RvNum",
    "RvStat", "Special", "Stat", "render_return",
    "OsCommand", "command_name",
    "OsCall", "OsCreate", "OsDestroy", "OsLabel", "OsReturn", "OsSignal",
    "OsSpin", "OsTau",
    "PlatformSpec", "POSIX_SPEC", "LINUX_SPEC", "OSX_SPEC", "FREEBSD_SPEC",
    "spec_by_name", "without_permissions", "with_timestamps",
]
