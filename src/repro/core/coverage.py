"""Specification-coverage instrumentation (paper section 7.2).

The paper measures how much of the *model* a test-suite run exercises
(98 % statement coverage), arguing that coverage of the specification is
the right target for a black-box oracle.  We reproduce the metric
mechanically: every specification clause declares a named coverage point
at import time, and records a hit whenever trace checking evaluates it.

Two refinements mirror the paper's caveats:

* clauses that are believed unreachable are declared with
  ``reachable=False`` — they document exhaustiveness but are excluded from
  the denominator ("we have explicitly included annotated lines covering
  these cases as a form of documentation");
* clauses specific to one platform are declared with ``platforms=...`` so
  that coverage of, say, a Linux-only clause is not demanded of an OS X
  run.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, FrozenSet, Iterable, Optional


@dataclasses.dataclass
class _Point:
    name: str
    reachable: bool
    platforms: Optional[FrozenSet[str]]  # None = all platforms
    hits: int = 0


class CoverageRegistry:
    """Registry of declared specification clauses and their hit counts."""

    def __init__(self) -> None:
        self._points: Dict[str, _Point] = {}
        self._lock = threading.Lock()
        self._enabled = True
        #: platform -> clause names proven statically unreachable there
        #: (installed by :func:`repro.analysis.dead.install_dead_clauses`).
        self._static_dead: Dict[str, FrozenSet[str]] = {}

    def declare(self, name: str, *, reachable: bool = True,
                platforms: Iterable[str] | None = None) -> str:
        """Declare a coverage point; returns the name for convenience."""
        with self._lock:
            if name not in self._points:
                self._points[name] = _Point(
                    name=name,
                    reachable=reachable,
                    platforms=frozenset(platforms) if platforms else None,
                )
        return name

    def hit(self, name: str) -> None:
        """Record that the named clause was evaluated.

        The increment (and the auto-registration fallback) run under
        the registry lock: streamed backends check on threads, and an
        unlocked read-modify-write would silently lose hits — exactly
        the counts :meth:`hit_names` ships between processes.
        """
        if not self._enabled:
            return
        with self._lock:
            point = self._points.get(name)
            if point is None:
                # Auto-register clauses exercised before declaration
                # (keeps the instrumentation non-fatal if a module
                # forgets to declare).
                point = _Point(name=name, reachable=True, platforms=None)
                self._points[name] = point
            point.hits += 1

    def reset_hits(self) -> None:
        """Zero all hit counts (e.g. before measuring one suite run)."""
        with self._lock:
            for point in self._points.values():
                point.hits = 0

    def set_enabled(self, enabled: bool) -> None:
        """Cheaply disable recording (for performance benchmarks)."""
        self._enabled = enabled

    def hit_names(self) -> FrozenSet[str]:
        """The clauses hit since the last reset.

        This is how per-process coverage travels: a worker resets,
        checks a trace, and ships the hit set back to the parent, which
        unions the sets and reports via :meth:`report_for`.
        """
        return frozenset(name for name, point in self._points.items()
                         if point.hits > 0)

    def install_static_dead(
            self, dead: Dict[str, Iterable[str]]) -> None:
        """Install per-platform statically-dead clause sets.

        Dead clauses leave the coverage denominator and the fuzz
        frontier for their platform; :meth:`report_for` lists them
        separately so reports can annotate rather than silently shrink.
        Idempotent — re-installing the same analysis is a no-op.
        """
        with self._lock:
            self._static_dead = {platform: frozenset(names)
                                 for platform, names in dead.items()}

    def statically_dead(self, platform: str | None = None
                        ) -> FrozenSet[str]:
        """Clauses proven unreachable on ``platform`` (with ``None``:
        on *every* platform the analysis covered)."""
        if platform is not None:
            return self._static_dead.get(platform, frozenset())
        sets = list(self._static_dead.values())
        if not sets:
            return frozenset()
        common = sets[0]
        for other in sets[1:]:
            common = common & other
        return common

    def declarations(self) -> Dict[str, tuple]:
        """Snapshot of declared points as ``name -> (reachable,
        platforms)`` — the linter's clause-consistency input."""
        return {name: (point.reachable, point.platforms)
                for name, point in self._points.items()}

    # -- reporting -----------------------------------------------------------
    def report(self, platform: str | None = None) -> "CoverageReport":
        """Compute coverage, restricted to clauses relevant for a platform."""
        return self.report_for(self.hit_names(), platform)

    def report_for(self, covered: Iterable[str],
                   platform: str | None = None) -> "CoverageReport":
        """Coverage report from an externally collected hit set.

        Unlike :meth:`report` this reads no hit counts, so results
        gathered in worker processes (whose registries are separate)
        can be reported without mutating this registry.
        """
        covered_set = set(covered)
        dead_set = self.statically_dead(platform)
        relevant = []
        dead = []
        for point in self._points.values():
            if not point.reachable:
                continue
            if (platform is not None and point.platforms is not None
                    and platform not in point.platforms):
                continue
            if point.name in dead_set:
                dead.append(point)
                continue
            relevant.append(point)
        return CoverageReport(
            total=len(relevant),
            covered=sorted(p.name for p in relevant
                           if p.name in covered_set),
            uncovered=sorted(p.name for p in relevant
                             if p.name not in covered_set),
            dead=sorted(p.name for p in dead),
        )

    def reachable_names(self, platform: str | None = None
                        ) -> FrozenSet[str]:
        """Every declared clause that is reachable (and relevant for
        ``platform``, when given) — the coverage denominator, and the
        universe the fuzzer's frontier is computed against.

        Clauses proven statically dead for the platform (see
        :meth:`install_static_dead`) are excluded: they are not targets
        a run could ever hit."""
        dead_set = self.statically_dead(platform)
        names = []
        for point in self._points.values():
            if not point.reachable or point.name in dead_set:
                continue
            if (platform is not None and point.platforms is not None
                    and platform not in point.platforms):
                continue
            names.append(point.name)
        return frozenset(names)

    def frontier(self, covered: Iterable[str],
                 platforms: Iterable[str]) -> Dict[str, list]:
        """Per-platform reachable-but-unhit clause lists.

        This is the machine-readable shape behind ``repro coverage
        --uncovered``/``--json`` and the input the coverage-guided
        fuzzer steers toward: for each platform, the clauses a run
        could still hit but has not.
        """
        covered_set = set(covered)
        return {platform: sorted(self.reachable_names(platform)
                                 - covered_set)
                for platform in platforms}

    @property
    def declared(self) -> int:
        return len(self._points)


@dataclasses.dataclass(frozen=True)
class CoverageReport:
    """Result of a coverage measurement."""

    total: int
    covered: list
    uncovered: list
    #: Clauses excluded from ``total`` because static analysis proved
    #: them unreachable on the reported platform.
    dead: list = dataclasses.field(default_factory=list)

    @property
    def fraction(self) -> float:
        if self.total == 0:
            return 1.0
        return len(self.covered) / self.total

    def to_dict(self) -> dict:
        """JSON-ready form (the ``repro coverage --json`` row shape)."""
        return {"total": self.total, "fraction": self.fraction,
                "covered": list(self.covered),
                "uncovered": list(self.uncovered),
                "dead": list(self.dead)}

    def render(self) -> str:
        pct = 100.0 * self.fraction
        lines = [f"model coverage: {len(self.covered)}/{self.total} "
                 f"clauses ({pct:.1f}%)"]
        if self.uncovered:
            lines.append("uncovered clauses:")
            lines.extend(f"  - {name}" for name in self.uncovered)
        if self.dead:
            lines.append("statically dead (excluded from the "
                         "denominator):")
            lines.extend(f"  # {name}" for name in self.dead)
        return "\n".join(lines)


#: The process-wide registry used by the specification modules.
REGISTRY = CoverageRegistry()


def declare(name: str, *, reachable: bool = True,
            platforms: Iterable[str] | None = None) -> str:
    """Module-level shorthand for :meth:`CoverageRegistry.declare`."""
    return REGISTRY.declare(name, reachable=reachable, platforms=platforms)


def cover(name: str) -> None:
    """Module-level shorthand for :meth:`CoverageRegistry.hit`."""
    REGISTRY.hit(name)
