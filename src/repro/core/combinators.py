"""The specification monad and combinators (paper section 4, Fig. 6).

The model is written as pure functions from states to *finite sets of
outcomes*, where an outcome pairs a successor state with a return value.
Nondeterminism is expressed by returning more than one outcome; looseness
about error codes is expressed by the **parallel combinator**: a command's
precondition checks are conceptually run in parallel, and the resulting
error may be from any failing check — none has priority over the others.

Checks come in two strengths, which is how the model stays both sound and
tight:

* a *mandatory* error from any check means the call must fail — success
  is not an allowed outcome;
* an *optional* error means the platform may either fail with it or
  behave as if the check passed (used for POSIX "may fail" clauses).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, FrozenSet, Iterable, Tuple, TypeVar

from repro.core.errors import Errno
from repro.core.values import Err, Ok, ReturnValue, RvNone, Special

S = TypeVar("S")


@dataclasses.dataclass(frozen=True)
class Outcome:
    """One allowed behaviour: a successor state and a return value."""

    state: object
    ret: ReturnValue


Outcomes = FrozenSet[Outcome]


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """Result of one precondition check.

    ``mandatory`` — errors that *must* occur (the operation cannot
    succeed); ``optional`` — errors that *may* occur even though the
    operation could also proceed.
    """

    mandatory: FrozenSet[Errno] = frozenset()
    optional: FrozenSet[Errno] = frozenset()

    @property
    def passes(self) -> bool:
        return not self.mandatory


#: A check takes no arguments (closures capture state) and yields a result.
Check = Callable[[], CheckResult]

PASS = CheckResult()


def fails(*errnos: Errno) -> CheckResult:
    """A check result demanding failure with one of the given errors."""
    return CheckResult(mandatory=frozenset(errnos))


def may_fail(*errnos: Errno) -> CheckResult:
    """A check result allowing (not requiring) the given errors."""
    return CheckResult(optional=frozenset(errnos))


def parallel(*checks: Check) -> CheckResult:
    """The ``|||`` combinator of Fig. 6.

    Runs all checks and merges their error sets: the call may fail with
    any error raised by any check, and none has priority.  The merged
    result is mandatory if any individual check mandated failure.
    """
    mandatory: set[Errno] = set()
    optional: set[Errno] = set()
    for check in checks:
        result = check()
        mandatory |= result.mandatory
        optional |= result.optional
    return CheckResult(mandatory=frozenset(mandatory),
                       optional=frozenset(optional))


def error_outcomes(state: S, result: CheckResult) -> Outcomes:
    """Error outcomes from a check result, leaving the state unchanged.

    Leaving the state unchanged on error is the POSIX invariant the paper
    proved as a sanity property of the model (section 1) — it is baked in
    here: error outcomes always carry the *input* state.
    """
    errs = result.mandatory | result.optional
    return frozenset(Outcome(state, Err(e)) for e in errs)


def guarded(state: S, result: CheckResult,
            success: Callable[[], Outcomes]) -> Outcomes:
    """Combine precondition checks with a success continuation.

    If any check mandated failure, only the error outcomes are allowed.
    Otherwise the success outcomes are allowed, plus any optional-error
    outcomes (the "may fail" looseness).
    """
    if not result.passes:
        return error_outcomes(state, result)
    outcomes = set(success())
    outcomes |= error_outcomes(state, result)
    return frozenset(outcomes)


def ok(state: S, value=None) -> Outcomes:
    """A single successful outcome (default value ``RV_none``)."""
    return frozenset({Outcome(state, Ok(value if value is not None
                                        else RvNone()))})


def errors(state: S, *errnos: Errno) -> Outcomes:
    """Outcomes failing with any of the given errors, state unchanged."""
    return frozenset(Outcome(state, Err(e)) for e in errnos)


def special(state: S, kind: str, detail: str = "") -> Outcomes:
    """An undefined / unspecified / implementation-defined outcome."""
    return frozenset({Outcome(state, Special(kind, detail))})


def union(*outcome_sets: Outcomes) -> Outcomes:
    """Nondeterministic choice between alternative behaviours."""
    out: set[Outcome] = set()
    for outcomes in outcome_sets:
        out |= outcomes
    return frozenset(out)


def union_all(outcome_sets: Iterable[Outcomes]) -> Outcomes:
    """Nondeterministic choice over an iterable of alternatives."""
    out: set[Outcome] = set()
    for outcomes in outcome_sets:
        out |= outcomes
    return frozenset(out)
