"""The modelled libc commands (the paper's ``ty_os_command``).

One frozen dataclass per libc function within scope (paper section 1.1):
close, closedir, link, lseek, lstat, mkdir, open, opendir, pread, pwrite,
read, readdir, readlink, rename, rewinddir, rmdir, stat, symlink, truncate,
unlink, write — plus the process-relevant chdir, chmod, chown and umask.

Every command renders to the test-script syntax (paper Fig. 2) and is
parsed back by :mod:`repro.script.parser`.
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.core.flags import OpenFlag, SeekWhence, print_open_flags


def _q(path: str) -> str:
    """Quote a path for script syntax."""
    return '"' + path.replace("\\", "\\\\").replace('"', '\\"') + '"'


@dataclasses.dataclass(frozen=True)
class Close:
    fd: int

    def render(self) -> str:
        return f"close {self.fd}"


@dataclasses.dataclass(frozen=True)
class Closedir:
    dh: int

    def render(self) -> str:
        return f"closedir {self.dh}"


@dataclasses.dataclass(frozen=True)
class Link:
    src: str
    dst: str

    def render(self) -> str:
        return f"link {_q(self.src)} {_q(self.dst)}"


@dataclasses.dataclass(frozen=True)
class Lseek:
    fd: int
    offset: int
    whence: SeekWhence

    def render(self) -> str:
        return f"lseek {self.fd} {self.offset} {self.whence.value}"


@dataclasses.dataclass(frozen=True)
class LstatCmd:
    path: str

    def render(self) -> str:
        return f"lstat {_q(self.path)}"


@dataclasses.dataclass(frozen=True)
class Mkdir:
    path: str
    mode: int

    def render(self) -> str:
        return f"mkdir {_q(self.path)} 0o{self.mode:o}"


@dataclasses.dataclass(frozen=True)
class Open:
    path: str
    flags: OpenFlag
    mode: int = 0o666

    def render(self) -> str:
        return f"open {_q(self.path)} {print_open_flags(self.flags)} 0o{self.mode:o}"


@dataclasses.dataclass(frozen=True)
class Opendir:
    path: str

    def render(self) -> str:
        return f"opendir {_q(self.path)}"


@dataclasses.dataclass(frozen=True)
class Pread:
    fd: int
    count: int
    offset: int

    def render(self) -> str:
        return f"pread {self.fd} {self.count} {self.offset}"


@dataclasses.dataclass(frozen=True)
class Pwrite:
    fd: int
    data: bytes
    offset: int

    def render(self) -> str:
        return f"pwrite {self.fd} {_q(self.data.decode('utf-8'))} {self.offset}"


@dataclasses.dataclass(frozen=True)
class Read:
    fd: int
    count: int

    def render(self) -> str:
        return f"read {self.fd} {self.count}"


@dataclasses.dataclass(frozen=True)
class Readdir:
    dh: int

    def render(self) -> str:
        return f"readdir {self.dh}"


@dataclasses.dataclass(frozen=True)
class Readlink:
    path: str

    def render(self) -> str:
        return f"readlink {_q(self.path)}"


@dataclasses.dataclass(frozen=True)
class Rename:
    src: str
    dst: str

    def render(self) -> str:
        return f"rename {_q(self.src)} {_q(self.dst)}"


@dataclasses.dataclass(frozen=True)
class Rewinddir:
    dh: int

    def render(self) -> str:
        return f"rewinddir {self.dh}"


@dataclasses.dataclass(frozen=True)
class Rmdir:
    path: str

    def render(self) -> str:
        return f"rmdir {_q(self.path)}"


@dataclasses.dataclass(frozen=True)
class StatCmd:
    path: str

    def render(self) -> str:
        return f"stat {_q(self.path)}"


@dataclasses.dataclass(frozen=True)
class Symlink:
    target: str
    linkpath: str

    def render(self) -> str:
        return f"symlink {_q(self.target)} {_q(self.linkpath)}"


@dataclasses.dataclass(frozen=True)
class Truncate:
    path: str
    length: int

    def render(self) -> str:
        return f"truncate {_q(self.path)} {self.length}"


@dataclasses.dataclass(frozen=True)
class Unlink:
    path: str

    def render(self) -> str:
        return f"unlink {_q(self.path)}"


@dataclasses.dataclass(frozen=True)
class Write:
    fd: int
    data: bytes

    def render(self) -> str:
        return f"write {self.fd} {_q(self.data.decode('utf-8'))}"


@dataclasses.dataclass(frozen=True)
class Chdir:
    path: str

    def render(self) -> str:
        return f"chdir {_q(self.path)}"


@dataclasses.dataclass(frozen=True)
class Chmod:
    path: str
    mode: int

    def render(self) -> str:
        return f"chmod {_q(self.path)} 0o{self.mode:o}"


@dataclasses.dataclass(frozen=True)
class Chown:
    path: str
    uid: int
    gid: int

    def render(self) -> str:
        return f"chown {_q(self.path)} {self.uid} {self.gid}"


@dataclasses.dataclass(frozen=True)
class Umask:
    mask: int

    def render(self) -> str:
        return f"umask 0o{self.mask:o}"


OsCommand = Union[
    Close, Closedir, Link, Lseek, LstatCmd, Mkdir, Open, Opendir, Pread,
    Pwrite, Read, Readdir, Readlink, Rename, Rewinddir, Rmdir, StatCmd,
    Symlink, Truncate, Unlink, Write, Chdir, Chmod, Chown, Umask,
]

#: Map from script keyword to command class, used by the parser and by the
#: test generator when grouping scripts by targeted function.
COMMAND_NAMES = {
    Close: "close", Closedir: "closedir", Link: "link", Lseek: "lseek",
    LstatCmd: "lstat", Mkdir: "mkdir", Open: "open", Opendir: "opendir",
    Pread: "pread", Pwrite: "pwrite", Read: "read", Readdir: "readdir",
    Readlink: "readlink", Rename: "rename", Rewinddir: "rewinddir",
    Rmdir: "rmdir", StatCmd: "stat", Symlink: "symlink",
    Truncate: "truncate", Unlink: "unlink", Write: "write", Chdir: "chdir",
    Chmod: "chmod", Chown: "chown", Umask: "umask",
}


def command_name(cmd: OsCommand) -> str:
    """The libc-function name a command instance corresponds to."""
    return COMMAND_NAMES[type(cmd)]
