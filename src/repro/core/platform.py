"""Platform parameterisation of the model (paper contribution point 2).

The model currently supports four primary modes — POSIX, Linux, OS X and
FreeBSD — plus traits that can be mixed in (permissions, timestamps).
Without this parameterisation a single behavioural difference (e.g. in
path resolution) would give rise to thousands of individual test-result
discrepancies.

A :class:`PlatformSpec` is a frozen bag of behaviour switches consulted by
the path-resolution and file-system modules.  The POSIX spec is the
*loosest*: wherever POSIX makes behaviour implementation-defined or allows
several errors, the POSIX spec admits the union of the platform
behaviours.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet

from repro.core.errors import Errno


class LinkSymlinkBehaviour(enum.Enum):
    """What ``link`` does when the source resolves to a symlink.

    POSIX leaves this implementation-defined (paper section 7.3.2): Linux
    hard-links the symlink itself, OS X follows the symlink, and the POSIX
    mode allows either.
    """

    LINK_THE_SYMLINK = "link_the_symlink"
    FOLLOW_THE_SYMLINK = "follow_the_symlink"
    EITHER = "either"


class TimestampMode(enum.Enum):
    """Timestamps trait: disabled, or updated immediately on each call.

    The paper also describes a *periodic* mode, but notes that checking it
    is excessively nondeterministic and it is largely untested; we model
    OFF and IMMEDIATE.
    """

    OFF = "off"
    IMMEDIATE = "immediate"


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """The behaviour switches that define one variant of the model."""

    name: str

    # -- traits ("core with/without permissions", timestamps) ---------------
    permissions_enabled: bool = True
    timestamps: TimestampMode = TimestampMode.OFF

    # -- checking parameters ---------------------------------------------------
    #: Bound on possible-next-state enumeration for partial reads and
    #: writes.  The model allows a read/write of n bytes to transfer any
    #: k in 1..n; enumerating every k is quadratic for large transfers
    #: (the cost the paper notes for "tests with large reads or
    #: writes").  The enumeration keeps every k up to this bound plus
    #: the full count n — the compact form of the paper's suggested
    #: continuation refactoring.
    partial_io_bound: int = 64

    # -- path resolution ------------------------------------------------------
    #: Maximum symlink expansions before ELOOP.
    symlink_loop_limit: int = 40
    #: Whether a trailing slash on a path whose final component is a
    #: symlink-to-a-directory forces the symlink to be followed even for
    #: calls that normally operate on the symlink itself (lstat, readlink).
    trailing_slash_follows_final_symlink: bool = True
    #: OS X quirk: ``readlink s2/`` where s2 is a symlink to a symlink
    #: returns the contents of the *intermediate* symlink rather than
    #: resolving fully (paper section 7.3.2).
    readlink_trailing_slash_reads_intermediate: bool = False

    # -- per-command error envelopes ----------------------------------------
    #: Errors allowed for ``unlink`` of a directory.  POSIX says EPERM;
    #: Linux follows the LSB and returns EISDIR (paper section 7.3.2).
    unlink_dir_errors: FrozenSet[Errno] = frozenset({Errno.EPERM})
    #: Errors allowed when renaming the root directory.  POSIX allows
    #: EBUSY or EINVAL; OS X returns EISDIR (paper section 7.3.2).
    rename_root_errors: FrozenSet[Errno] = frozenset(
        {Errno.EBUSY, Errno.EINVAL})
    #: Errors allowed when removing the root directory.
    rmdir_root_errors: FrozenSet[Errno] = frozenset(
        {Errno.EBUSY, Errno.EINVAL, Errno.ENOTEMPTY})
    #: Errors allowed when an operation requires an empty directory but
    #: finds a non-empty one (rmdir, rename onto a non-empty directory).
    #: POSIX allows EEXIST or ENOTEMPTY; the modelled platforms use
    #: ENOTEMPTY.
    notempty_errors: FrozenSet[Errno] = frozenset({Errno.ENOTEMPTY})
    #: Errors allowed for ``link`` when the *destination* path names an
    #: existing file via a trailing slash, e.g. ``link /dir/ /f.txt/``.
    #: One might expect ENOTDIR; Linux returns EEXIST (section 7.3.2).
    link_trailing_slash_file_errors: FrozenSet[Errno] = frozenset(
        {Errno.ENOTDIR})
    #: Behaviour of ``link`` on a symlink source.
    link_on_symlink: LinkSymlinkBehaviour = LinkSymlinkBehaviour.EITHER
    #: Errors allowed for ``open`` with O_CREAT|O_DIRECTORY|O_EXCL on a
    #: symlink to an existing directory.  POSIX: EEXIST.  FreeBSD: ENOTDIR
    #: (and, as a defect beyond its own envelope, clobbers the symlink —
    #: section 7.3.2).
    open_excl_dir_symlink_errors: FrozenSet[Errno] = frozenset(
        {Errno.EEXIST})

    # -- platform conventions -------------------------------------------------
    #: Linux convention: ``pwrite`` on an fd opened with O_APPEND ignores
    #: the offset and appends (section 7.3.3).
    pwrite_append_ignores_offset: bool = False
    #: Whether writing zero bytes to a bad (but numerically valid) file
    #: descriptor may return 0 instead of EBADF — implementation-defined,
    #: and one of the acceptable variations listed in section 7.2.
    write_zero_bad_fd_may_succeed: bool = False
    #: Mode bits assigned to newly created symlinks (platform-specific;
    #: POSIX leaves symlink permissions implementation-defined).
    symlink_default_mode: int = 0o777
    #: Whether the process umask is applied to new symlinks (OS X does,
    #: Linux does not).
    symlink_umask_applies: bool = False

    def allows(self, *names: str) -> bool:
        """True if this spec is one of the named platforms.

        Convenience used by specification clauses that special-case a
        platform, mirroring the paper's per-platform clause annotations.
        """
        return self.name in names


def _loosest(*errsets: FrozenSet[Errno]) -> FrozenSet[Errno]:
    out: set[Errno] = set()
    for s in errsets:
        out |= s
    return frozenset(out)


LINUX_SPEC = PlatformSpec(
    name="linux",
    unlink_dir_errors=frozenset({Errno.EISDIR}),
    link_trailing_slash_file_errors=frozenset({Errno.ENOTDIR, Errno.EEXIST}),
    link_on_symlink=LinkSymlinkBehaviour.LINK_THE_SYMLINK,
    pwrite_append_ignores_offset=True,
    write_zero_bad_fd_may_succeed=True,
    symlink_default_mode=0o777,
)

OSX_SPEC = PlatformSpec(
    name="osx",
    rename_root_errors=frozenset({Errno.EISDIR}),
    link_on_symlink=LinkSymlinkBehaviour.FOLLOW_THE_SYMLINK,
    readlink_trailing_slash_reads_intermediate=True,
    symlink_default_mode=0o755,
    symlink_umask_applies=True,
)

FREEBSD_SPEC = PlatformSpec(
    name="freebsd",
    open_excl_dir_symlink_errors=frozenset({Errno.ENOTDIR}),
    link_on_symlink=LinkSymlinkBehaviour.LINK_THE_SYMLINK,
    symlink_default_mode=0o755,
)

#: The POSIX mode is the loosest envelope: anywhere the standard leaves
#: behaviour unspecified or implementation-defined, it admits the union of
#: the real-world platform behaviours.
POSIX_SPEC = PlatformSpec(
    name="posix",
    unlink_dir_errors=_loosest(
        frozenset({Errno.EPERM}), LINUX_SPEC.unlink_dir_errors),
    rename_root_errors=_loosest(
        frozenset({Errno.EBUSY, Errno.EINVAL}), OSX_SPEC.rename_root_errors),
    link_trailing_slash_file_errors=_loosest(
        frozenset({Errno.ENOTDIR}),
        LINUX_SPEC.link_trailing_slash_file_errors),
    link_on_symlink=LinkSymlinkBehaviour.EITHER,
    open_excl_dir_symlink_errors=frozenset({Errno.EEXIST}),
    write_zero_bad_fd_may_succeed=True,
    notempty_errors=frozenset({Errno.ENOTEMPTY, Errno.EEXIST}),
)

SPECS = {
    "posix": POSIX_SPEC,
    "linux": LINUX_SPEC,
    "osx": OSX_SPEC,
    "freebsd": FREEBSD_SPEC,
}


def real_platforms() -> tuple:
    """The modelled real-world platforms — every variant except the
    loose ``posix`` envelope, in :data:`SPECS` order.

    This is the set "portable" quantifies over: a trace allowed by
    every real platform is by construction allowed by the POSIX
    envelope as well, so consumers (portability, merge, CLI) should use
    this helper instead of hardcoding ``p != "posix"``.
    """
    return tuple(name for name in SPECS if name != "posix")


def spec_by_name(name: str) -> PlatformSpec:
    """Look up one of the four primary model variants by name."""
    try:
        return SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; expected one of {sorted(SPECS)}"
        ) from None


def without_permissions(spec: PlatformSpec) -> PlatformSpec:
    """The "core without permissions" trait combination (paper section 4).

    Permission information is ignored and all files are accessible by all
    users.
    """
    return dataclasses.replace(spec, permissions_enabled=False)


def with_timestamps(spec: PlatformSpec) -> PlatformSpec:
    """Mix in the timestamps trait in immediate mode."""
    return dataclasses.replace(spec, timestamps=TimestampMode.IMMEDIATE)
