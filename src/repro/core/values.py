"""Return values and outcomes of modelled libc calls.

The model's ``OS_RETURN`` label carries an ``error_or_value``: either an
:class:`~repro.core.errors.Errno` or a success value (``RV_none``,
``RV_num``, ``RV_bytes``, ...).  The checker compares observed return
values against the values allowed by the model, so these types implement
value equality and a stable script/trace syntax (paper Figs. 3 and 4).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.core.errors import Errno
from repro.core.flags import FileKind


@dataclasses.dataclass(frozen=True)
class Stat:
    """The subset of ``struct stat`` that the model specifies.

    ``nlink`` is optional because several real-world file systems do not
    maintain link counts (Btrfs and SSHFS for directories; SSHFS for
    regular files — paper section 7.3.2); the checker reports a deviation
    when the model requires a count the implementation cannot provide.
    """

    kind: FileKind
    size: int
    nlink: Optional[int]
    uid: int
    gid: int
    mode: int

    def render(self) -> str:
        nlink = "-" if self.nlink is None else str(self.nlink)
        return (f"{{kind={self.kind.value}; size={self.size}; "
                f"nlink={nlink}; uid={self.uid}; gid={self.gid}; "
                f"mode=0o{self.mode:o}}}")


@dataclasses.dataclass(frozen=True)
class RvNone:
    """Successful completion with no interesting value (``RV_none``)."""

    def render(self) -> str:
        return "RV_none"


@dataclasses.dataclass(frozen=True)
class RvNum:
    """A numeric return: byte counts, offsets, file descriptors."""

    value: int

    def render(self) -> str:
        return f"RV_num({self.value})"


@dataclasses.dataclass(frozen=True)
class RvBytes:
    """Returned data: ``read``/``pread`` contents, ``readlink`` target."""

    data: bytes

    def render(self) -> str:
        return f"RV_bytes({self.data.decode('utf-8', 'replace')!r})"


@dataclasses.dataclass(frozen=True)
class RvStat:
    """Result of ``stat``/``lstat``."""

    stat: Stat

    def render(self) -> str:
        return f"RV_stat({self.stat.render()})"


@dataclasses.dataclass(frozen=True)
class RvDirEntry:
    """Result of ``readdir``: an entry name, or end-of-directory."""

    name: Optional[str]  # None signals end of directory

    def render(self) -> str:
        return "RV_end_of_dir" if self.name is None else f"RV_entry({self.name!r})"


Value = Union[RvNone, RvNum, RvBytes, RvStat, RvDirEntry]


@dataclasses.dataclass(frozen=True)
class Ok:
    """A successful return carrying a :data:`Value`."""

    value: Value

    @property
    def is_error(self) -> bool:
        return False

    def render(self) -> str:
        return self.value.render()


@dataclasses.dataclass(frozen=True)
class Err:
    """An error return carrying an :class:`Errno`."""

    errno: Errno

    @property
    def is_error(self) -> bool:
        return True

    def render(self) -> str:
        return self.errno.value


@dataclasses.dataclass(frozen=True)
class Special:
    """POSIX undefined / unspecified / implementation-defined behaviour.

    A transition into a special state means the model places no further
    constraints on the implementation for this call (paper sections 1.1
    and 5: ``finset os_state_or_special``).
    """

    kind: str  # "undefined" | "unspecified" | "implementation-defined"
    detail: str = ""

    @property
    def is_error(self) -> bool:
        return False

    def render(self) -> str:
        return f"SPECIAL({self.kind}: {self.detail})"


ReturnValue = Union[Ok, Err, Special]


def render_return(ret: ReturnValue) -> str:
    """Render a return value in trace syntax."""
    return ret.render()
