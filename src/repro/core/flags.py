"""Flags and constant values for the modelled libc calls.

These correspond to the argument types of ``ty_os_command`` in the paper's
model: ``open`` flag bitfields, ``lseek`` whence values, and file-mode
(permission) bits.
"""

from __future__ import annotations

import enum


class OpenFlag(enum.Flag):
    """Flags accepted by ``open`` (the modelled subset).

    ``open`` has an especially large number of generated tests precisely
    because one of its arguments is this bitfield (paper section 6.1).
    """

    NONE = 0
    O_RDONLY = enum.auto()
    O_WRONLY = enum.auto()
    O_RDWR = enum.auto()
    O_CREAT = enum.auto()
    O_EXCL = enum.auto()
    O_TRUNC = enum.auto()
    O_APPEND = enum.auto()
    O_DIRECTORY = enum.auto()
    O_NOFOLLOW = enum.auto()

    @property
    def wants_read(self) -> bool:
        """True if the access mode permits reading."""
        return bool(self & (OpenFlag.O_RDONLY | OpenFlag.O_RDWR)) or not (
            self & (OpenFlag.O_WRONLY | OpenFlag.O_RDWR)
        )

    @property
    def wants_write(self) -> bool:
        """True if the access mode permits writing."""
        return bool(self & (OpenFlag.O_WRONLY | OpenFlag.O_RDWR))


# Parsing / printing of flag lists as they appear in test scripts, e.g.
# ``[O_CREAT;O_WRONLY]`` (paper Fig. 2).
_FLAG_NAMES = {
    "O_RDONLY": OpenFlag.O_RDONLY,
    "O_WRONLY": OpenFlag.O_WRONLY,
    "O_RDWR": OpenFlag.O_RDWR,
    "O_CREAT": OpenFlag.O_CREAT,
    "O_EXCL": OpenFlag.O_EXCL,
    "O_TRUNC": OpenFlag.O_TRUNC,
    "O_APPEND": OpenFlag.O_APPEND,
    "O_DIRECTORY": OpenFlag.O_DIRECTORY,
    "O_NOFOLLOW": OpenFlag.O_NOFOLLOW,
}


def parse_open_flags(text: str) -> OpenFlag:
    """Parse a script-format flag list such as ``[O_CREAT;O_WRONLY]``."""
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise ValueError(f"malformed open flag list: {text!r}")
    body = text[1:-1].strip()
    flags = OpenFlag.NONE
    if not body:
        return flags
    for part in body.split(";"):
        name = part.strip()
        if name not in _FLAG_NAMES:
            raise ValueError(f"unknown open flag: {name!r}")
        flags |= _FLAG_NAMES[name]
    return flags


def print_open_flags(flags: OpenFlag) -> str:
    """Print flags in the script format, deterministically ordered."""
    names = [name for name, f in _FLAG_NAMES.items() if flags & f]
    return "[" + ";".join(names) + "]"


class SeekWhence(enum.Enum):
    """``lseek`` whence argument."""

    SEEK_SET = "SEEK_SET"
    SEEK_CUR = "SEEK_CUR"
    SEEK_END = "SEEK_END"


# -- permission bits ---------------------------------------------------------

S_IRUSR = 0o400
S_IWUSR = 0o200
S_IXUSR = 0o100
S_IRGRP = 0o040
S_IWGRP = 0o020
S_IXGRP = 0o010
S_IROTH = 0o004
S_IWOTH = 0o002
S_IXOTH = 0o001

MODE_MASK = 0o7777

#: Permission bits checked during access control, by (who, kind).
R_BITS = (S_IRUSR, S_IRGRP, S_IROTH)
W_BITS = (S_IWUSR, S_IWGRP, S_IWOTH)
X_BITS = (S_IXUSR, S_IXGRP, S_IXOTH)


class FileKind(enum.Enum):
    """The file types within the model's scope.

    FIFOs, sockets and device special files are out of scope (paper
    section 1.2).
    """

    REGULAR = "S_IFREG"
    DIRECTORY = "S_IFDIR"
    SYMLINK = "S_IFLNK"
