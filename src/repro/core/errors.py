"""POSIX error codes used by the specification.

Only the errors that can arise from the modelled file-system calls are
included.  Per the paper's scope (section 1.2) we deliberately exclude
``EIO``, ``ENOMEM``, ``EINTR`` and most resource-exhaustion errors — from a
modelling perspective those could occur at any time.  ``ENOSPC`` *is*
included because the posixovl/VFAT storage-leak reproduction (section
7.3.5) observes it.
"""

from __future__ import annotations

import enum


@enum.unique
class Errno(enum.Enum):
    """Error codes returnable by the modelled libc calls."""

    EACCES = "EACCES"
    EBADF = "EBADF"
    EBUSY = "EBUSY"
    EEXIST = "EEXIST"
    EFBIG = "EFBIG"
    EINVAL = "EINVAL"
    EISDIR = "EISDIR"
    ELOOP = "ELOOP"
    EMLINK = "EMLINK"
    ENAMETOOLONG = "ENAMETOOLONG"
    ENOENT = "ENOENT"
    ENOSPC = "ENOSPC"
    ENOTDIR = "ENOTDIR"
    ENOTEMPTY = "ENOTEMPTY"
    ENXIO = "ENXIO"
    EOPNOTSUPP = "EOPNOTSUPP"
    EOVERFLOW = "EOVERFLOW"
    EPERM = "EPERM"
    EROFS = "EROFS"
    ESPIPE = "ESPIPE"
    EXDEV = "EXDEV"

    def __repr__(self) -> str:  # compact in diagnostics
        return self.value

    def __str__(self) -> str:
        return self.value

    def __lt__(self, other: "Errno") -> bool:
        # Stable ordering so diagnostics ("allowed are only: ...") print
        # deterministically.
        if not isinstance(other, Errno):
            return NotImplemented
        return self.value < other.value


def errno_by_name(name: str) -> Errno:
    """Look up an :class:`Errno` by its POSIX name (e.g. ``"ENOENT"``)."""
    try:
        return Errno[name]
    except KeyError:
        raise ValueError(f"unknown errno name: {name!r}") from None
