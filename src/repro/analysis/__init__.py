"""Static analysis over the specification and the repo itself.

Three independent analyses share this package:

* :mod:`repro.analysis.dead` — dead-clause proving: extract the guard
  conditions dominating every specification ``cover(...)`` site and
  partially evaluate them against each :class:`PlatformSpec`, yielding
  per-platform verdicts {statically-dead, reachable, unknown}.  The
  dead sets install into :data:`repro.core.coverage.REGISTRY` so the
  coverage denominator, ``repro coverage --uncovered`` and the fuzz
  frontier stop counting clauses a platform's switches preclude.
* :mod:`repro.analysis.absint` — a flow-sensitive abstract interpreter
  over script ASTs (fd table bounds, created-name namespace, process
  identity) classifying commands as well-formed vs *doomed* (provably
  never returning ``Ok``); the fuzzer rejects doomed mutants before
  paying for execution, and ``repro lint-script`` explains verdicts.
* :mod:`repro.analysis.lint` — custom AST lints enforcing the repo's
  hand-maintained invariants (layering, lock discipline, determinism,
  pickle-safety, clause-name consistency), run as ``repro lint`` in CI.
"""

from repro.analysis.absint import (ScriptReport, StepVerdict,
                                   classify_script, rejects)
from repro.analysis.dead import (DeadClauseReport, dead_clause_report,
                                 install_dead_clauses)
from repro.analysis.lint import (Finding, LAYERS, layer_of, lint_paths,
                                 render_findings)

__all__ = [
    "DeadClauseReport",
    "dead_clause_report",
    "install_dead_clauses",
    "ScriptReport",
    "StepVerdict",
    "classify_script",
    "rejects",
    "Finding",
    "LAYERS",
    "layer_of",
    "lint_paths",
    "render_findings",
]
