"""Repo-invariant linter: AST checks for the rules the tree lives by.

The repo enforces several invariants that ordinary tooling cannot see:

* **layering** — the Fig.-5-derived module layering (state < pathres <
  fsops < osapi < ... < cli).  Deeper than the architecture test's
  import walk: literal ``importlib.import_module("...")`` /
  ``__import__("...")`` edges count too.
* **lock-discipline** — a class that guards an attribute with its
  ``self._lock`` somewhere must guard it everywhere (outside
  ``__init__``): one unlocked ``append`` silently loses the hits
  :meth:`CoverageRegistry.hit` was made thread-safe to keep.
* **determinism** — no unseeded module-level ``random.*`` calls
  anywhere in ``src`` (all randomness flows through seeded
  ``random.Random`` instances), and no ``json.dumps`` without
  ``sort_keys=True`` in byte-stable modules (the store's
  content-addressing and artifact exports compare bytes).
* **pickle-safety** — modules whose types cross shard/process
  boundaries must not hold locks, threads, or lambdas.
* **clause-consistency** — every literal ``cover(name)`` names a
  declared clause; every ``declare``\\ d reachable clause has a cover
  site; an explicit ``platforms=`` annotation must not list a platform
  the dead-clause analysis proves the clause unreachable on.

``repro lint src/repro`` runs all rules and is a CI gate (clean on the
current tree).  Suppress a finding by appending ``# lint:
ignore[rule-name]`` to the flagged line.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: module prefix -> layer index (higher may import lower, not the
#: converse).  Order matters: the first matching prefix wins, so more
#: specific prefixes ("repro.service.pool") precede their parents.
LAYERS: Dict[str, int] = {
    "repro.util": 0,
    "repro.core": 1,
    "repro.state": 2,
    "repro.perms": 3,
    "repro.pathres": 4,
    "repro.fsops": 5,
    "repro.osapi": 6,
    "repro.engine": 7,
    "repro.checker": 8,
    "repro.script": 8,
    "repro.fsimpl": 9,
    "repro.executor": 10,
    "repro.testgen": 10,
    "repro.oracle": 10,
    # Static analysis reads the spec layers below and serves the fuzz /
    # store / cli layers above.
    "repro.analysis": 10,
    "repro.gen": 11,
    "repro.harness": 11,
    "repro.store": 11,
    "repro.service.pool": 11,
    "repro.api": 12,
    "repro.service": 13,
    "repro.fuzz": 13,
    "repro.cli": 14,
}

#: Modules whose on-disk/JSON output must be byte-stable (content
#: addressing, artifact diffing): json.dumps must sort keys.
BYTE_STABLE_PREFIXES = (
    "repro.store",
    "repro.api.artifact",
    "repro.fuzz.view",
    "repro.harness",
)

#: Modules defining types that cross shard/process boundaries.
WIRE_MODULES = frozenset({
    "repro.core.commands", "repro.core.labels", "repro.core.values",
    "repro.script.ast", "repro.fsimpl.quirks", "repro.oracle.verdict",
    "repro.osapi.os_state", "repro.osapi.process",
    "repro.store.records",
})

#: Module-level random functions that draw from the unseeded global
#: generator (``random.Random(seed)`` instances are the sanctioned way).
_UNSEEDED_RANDOM = frozenset({
    "random", "randint", "choice", "choices", "shuffle", "sample",
    "randrange", "uniform", "getrandbits", "gauss", "betavariate",
})

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "add", "pop", "clear", "update", "setdefault",
    "discard", "remove", "insert", "extend", "popitem",
})

ALL_RULES = ("layering", "lock-discipline", "determinism",
             "pickle-safety", "clause-consistency")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def render_findings(findings: Sequence[Finding]) -> str:
    if not findings:
        return "lint: clean"
    lines = [finding.render() for finding in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def layer_of(module: str) -> Optional[int]:
    """The layer index of a dotted module name, or None if unlayered."""
    for prefix, layer in LAYERS.items():
        if module == prefix or module.startswith(prefix + "."):
            return layer
    return None


def _module_name(path: pathlib.Path) -> Optional[str]:
    """Dotted module name for a file under a ``repro`` package root."""
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    module = ".".join(parts[idx:])
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    return module


# ---------------------------------------------------------------------------
# rule: layering
# ---------------------------------------------------------------------------

def _iter_imports(tree: ast.AST) -> Iterable[Tuple[str, int]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            yield node.module, node.lineno
        elif isinstance(node, ast.Call):
            # Literal dynamic imports count as edges too.
            func = node.func
            dynamic = (isinstance(func, ast.Name)
                       and func.id == "__import__") or (
                isinstance(func, ast.Attribute)
                and func.attr == "import_module"
                and isinstance(func.value, ast.Name)
                and func.value.id == "importlib")
            if dynamic and node.args and isinstance(
                    node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, str):
                yield node.args[0].value, node.lineno


def _rule_layering(module: str, path: str,
                   tree: ast.AST) -> List[Finding]:
    my_layer = layer_of(module)
    if my_layer is None:
        return []
    findings = []
    for imported, lineno in _iter_imports(tree):
        dep_layer = layer_of(imported)
        if dep_layer is not None and dep_layer > my_layer:
            findings.append(Finding(
                "layering", path, lineno,
                f"{module} (layer {my_layer}) imports {imported} "
                f"(layer {dep_layer}); dependencies must point "
                "downward"))
    return findings


# ---------------------------------------------------------------------------
# rule: lock-discipline
# ---------------------------------------------------------------------------

def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``X`` (descending through subscripts)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _iter_events(body: List[ast.stmt], lock_attr: str,
                 held: bool) -> Iterable[Tuple[str, str, int, bool]]:
    """Yield ``("mutate"|"call", name, lineno, under_lock)`` events:
    self-attribute mutations and ``self.method(...)`` call sites."""
    for stmt in body:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            now_held = held or any(
                _self_attr(item.context_expr) == lock_attr
                for item in stmt.items)
            yield from _iter_events(stmt.body, lock_attr, now_held)
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        # Direct mutations and self-calls in this statement...
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    yield "mutate", attr, stmt.lineno, held
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _MUTATOR_METHODS:
                attr = _self_attr(func.value)
                if attr is not None:
                    yield "mutate", attr, node.lineno, held
            elif isinstance(func.value, ast.Name) and \
                    func.value.id == "self":
                yield "call", func.attr, node.lineno, held
        # ...and recursion into compound statements.
        for field in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field, None)
            if inner:
                yield from _iter_events(inner, lock_attr, held)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _iter_events(handler.body, lock_attr, held)


def _lock_safe_methods(methods, events_of) -> set:
    """Methods whose bodies only ever run with the lock held.

    A private method qualifies when every in-class call site is under
    the lock, inside ``__init__`` (the object is not yet shared), or
    inside another qualifying method — computed as a fixpoint.  Public
    methods never qualify: external callers are unknowable.
    """
    names = {m.name for m in methods}
    callers: Dict[str, List[Tuple[str, bool]]] = {n: [] for n in names}
    for method in methods:
        for kind, name, _, held in events_of(method):
            if kind == "call" and name in callers:
                callers[name].append((method.name, held))
    safe: set = set()
    changed = True
    while changed:
        changed = False
        for method in methods:
            name = method.name
            if name in safe or not name.startswith("_") or \
                    name.startswith("__"):
                continue
            sites = callers[name]
            if sites and all(
                    held or caller in ("__init__", "__new__")
                    or caller in safe
                    for caller, held in sites):
                safe.add(name)
                changed = True
    return safe


def _rule_lock_discipline(module: str, path: str,
                          tree: ast.AST) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [n for n in node.body
                   if isinstance(n, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]
        lock_attrs = set()
        for method in methods:
            for stmt in ast.walk(method):
                if isinstance(stmt, ast.Assign) and isinstance(
                        stmt.value, ast.Call):
                    func = stmt.value.func
                    if isinstance(func, ast.Attribute) and \
                            func.attr in ("Lock", "RLock"):
                        for target in stmt.targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                lock_attrs.add(attr)
        for lock_attr in sorted(lock_attrs):
            def events_of(method, _lock=lock_attr):
                return list(_iter_events(method.body, _lock, False))

            lock_held_only = _lock_safe_methods(methods, events_of)
            # Attributes mutated under the lock anywhere are "guarded";
            # mutating them without it (outside __init__ and outside
            # methods only ever entered with the lock held) is the bug.
            guarded = set()
            for method in methods:
                body_held = method.name in lock_held_only
                for kind, attr, _, held in events_of(method):
                    if kind == "mutate" and (held or body_held) \
                            and attr != lock_attr:
                        guarded.add(attr)
            for method in methods:
                if method.name in ("__init__", "__new__") or \
                        method.name in lock_held_only:
                    continue
                for kind, attr, lineno, held in events_of(method):
                    if kind == "mutate" and attr in guarded \
                            and not held:
                        findings.append(Finding(
                            "lock-discipline", path, lineno,
                            f"{node.name}.{method.name} mutates "
                            f"self.{attr} outside `with self."
                            f"{lock_attr}:` although other methods "
                            "guard it"))
    return findings


# ---------------------------------------------------------------------------
# rule: determinism
# ---------------------------------------------------------------------------

def _rule_determinism(module: str, path: str,
                      tree: ast.AST) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name):
            if func.value.id == "random" and \
                    func.attr in _UNSEEDED_RANDOM:
                findings.append(Finding(
                    "determinism", path, node.lineno,
                    f"call to unseeded random.{func.attr}(); use a "
                    "seeded random.Random instance"))
            if func.value.id == "json" and func.attr == "dumps" and \
                    module is not None and module.startswith(
                        BYTE_STABLE_PREFIXES):
                sort_kw = [kw for kw in node.keywords
                           if kw.arg == "sort_keys"]
                sorted_ok = any(
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True for kw in sort_kw)
                if not sorted_ok:
                    findings.append(Finding(
                        "determinism", path, node.lineno,
                        "json.dumps without sort_keys=True in a "
                        f"byte-stable module ({module})"))
    return findings


# ---------------------------------------------------------------------------
# rule: pickle-safety
# ---------------------------------------------------------------------------

def _rule_pickle_safety(module: str, path: str,
                        tree: ast.AST) -> List[Finding]:
    if module not in WIRE_MODULES:
        return []
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name) and node.value.id == "threading":
            findings.append(Finding(
                "pickle-safety", path, node.lineno,
                f"threading.{node.attr} in wire module {module}: "
                "values of this module cross process boundaries and "
                "must stay picklable"))
        elif isinstance(node, ast.Lambda):
            findings.append(Finding(
                "pickle-safety", path, node.lineno,
                f"lambda in wire module {module}: lambdas do not "
                "pickle across shard boundaries"))
    return findings


# ---------------------------------------------------------------------------
# rule: clause-consistency
# ---------------------------------------------------------------------------

def _cover_literals(tree: ast.AST) -> List[Tuple[str, int]]:
    names = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            is_cover = (isinstance(func, ast.Name)
                        and func.id == "cover") or (
                isinstance(func, ast.Attribute) and func.attr == "hit")
            if is_cover and node.args and isinstance(
                    node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, str):
                names.append((node.args[0].value, node.lineno))
    return names


def _declare_literals(tree: ast.AST
                      ) -> List[Tuple[str, int, Optional[tuple]]]:
    """``(name, lineno, platforms-or-None)`` for literal declares."""
    declares = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name) and node.func.id == "declare" \
                and node.args and isinstance(
                    node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, str):
            platforms = None
            for kw in node.keywords:
                if kw.arg == "platforms" and isinstance(
                        kw.value, (ast.Tuple, ast.List)):
                    elts = kw.value.elts
                    if all(isinstance(e, ast.Constant) for e in elts):
                        platforms = tuple(e.value for e in elts)
            declares.append((node.args[0].value, node.lineno,
                             platforms))
    return declares


def _rule_clause_consistency(
        parsed: List[Tuple[str, str, ast.AST]]) -> List[Finding]:
    """Cross-file rule: cover/declare names vs the live registry.

    Imports the spec modules (registering every declared clause) and
    the dead-clause analysis lazily, so plain per-file lints stay
    cheap.
    """
    from repro.analysis.dead import dead_clause_report
    from repro.core.coverage import REGISTRY

    report = dead_clause_report()  # imports every spec module
    declarations = REGISTRY.declarations()
    covered_anywhere = {site.clause for site in report.sites}
    for _, _, tree in parsed:
        covered_anywhere.update(name for name, _ in
                                _cover_literals(tree))
    findings = []
    for module, path, tree in parsed:
        local_declares = _declare_literals(tree)
        local_names = {name for name, _, _ in local_declares}
        for name, lineno in _cover_literals(tree):
            if name not in declarations and name not in local_names:
                findings.append(Finding(
                    "clause-consistency", path, lineno,
                    f"cover({name!r}) names an undeclared clause"))
        for name, lineno, platforms in local_declares:
            reachable, _ = declarations.get(name, (True, None))
            if reachable and name not in covered_anywhere:
                findings.append(Finding(
                    "clause-consistency", path, lineno,
                    f"clause {name!r} is declared reachable but no "
                    "cover() site hits it"))
            if platforms is None:
                continue
            for platform in platforms:
                verdicts = report.verdicts.get(platform, {})
                if verdicts.get(name) == "dead":
                    findings.append(Finding(
                        "clause-consistency", path, lineno,
                        f"clause {name!r} is annotated for platform "
                        f"{platform!r} but the dead-clause analysis "
                        "proves it unreachable there"))
    return findings


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

_PER_FILE_RULES = {
    "layering": _rule_layering,
    "lock-discipline": _rule_lock_discipline,
    "determinism": _rule_determinism,
    "pickle-safety": _rule_pickle_safety,
}


def _suppressed(finding: Finding,
                lines: Dict[str, List[str]]) -> bool:
    source = lines.get(finding.path, [])
    if 1 <= finding.line <= len(source):
        return f"lint: ignore[{finding.rule}]" in \
            source[finding.line - 1]
    return False


def lint_paths(paths: Iterable[str | pathlib.Path],
               rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint python files under ``paths`` with the selected rules.

    Returns surviving findings (inline ``# lint: ignore[rule]``
    pragmas suppress), sorted by path/line.
    """
    selected = tuple(rules) if rules is not None else ALL_RULES
    files: List[pathlib.Path] = []
    for entry in paths:
        entry = pathlib.Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)

    parsed: List[Tuple[str, str, ast.AST]] = []
    source_lines: Dict[str, List[str]] = {}
    findings: List[Finding] = []
    for file_path in files:
        text = file_path.read_text()
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            findings.append(Finding(
                "syntax", str(file_path), exc.lineno or 0,
                f"cannot parse: {exc.msg}"))
            continue
        module = _module_name(file_path)
        source_lines[str(file_path)] = text.splitlines()
        parsed.append((module or "", str(file_path), tree))

    for module, path, tree in parsed:
        for rule in selected:
            check = _PER_FILE_RULES.get(rule)
            if check is not None:
                findings.extend(check(module, path, tree))
    if "clause-consistency" in selected:
        findings.extend(_rule_clause_consistency(parsed))

    findings = [f for f in findings
                if not _suppressed(f, source_lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
