"""Dead-clause analysis: which coverage clauses can a platform hit?

Every specification clause records a hit through a literal
``cover("name")`` call inside the spec functions (:mod:`repro.fsops`,
:mod:`repro.pathres.resolve`, :mod:`repro.osapi.transition`).  Whether
such a site can execute at all depends partly on *static* facts: the
:class:`~repro.core.platform.PlatformSpec` switches are frozen per
checking pass, so a site dominated by ``spec.pwrite_append_ignores_-
offset`` is unreachable on every platform where that switch is False —
no trace can ever hit it, and counting it in the coverage denominator
(or chasing it with the fuzzer's frontier probes) is wasted effort.

The analysis is a two-step partial evaluation:

1. **Guard extraction** walks each spec module's AST and collects, for
   every ``cover(...)`` site, the conjunction of conditions dominating
   it (``if``/``elif`` tests with polarity, ``assert`` tests, and the
   negations of early-``return`` guards), together with a snapshot of
   straight-line local bindings (for constant propagation through
   ``behaviour = spec.link_on_symlink``-style locals).
2. **Evaluation** resolves each conjunct against a concrete
   :class:`PlatformSpec` and the module's import namespace using
   three-valued logic: anything not statically known (runtime state,
   ``isinstance`` dispatch, path contents) is *unknown*.

A site is **dead** on a platform if any dominating conjunct evaluates
to a known False; **reachable** if every conjunct is known True; else
**unknown**.  A clause is dead iff all of its sites are dead.  Only
soundness of *dead* matters downstream — unknown is the safe default,
so the evaluator never guesses.

:func:`install_dead_clauses` pushes the per-platform dead sets into
:data:`repro.core.coverage.REGISTRY`; the registry then subtracts them
from ``reachable_names``/``frontier``/``report_for``, which is what
``repro coverage --uncovered``, ``repro fuzz`` and the guided-fuzzing
bench all consume — one analysis, one shared source of truth.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.coverage import CoverageRegistry, REGISTRY
from repro.core.platform import SPECS, PlatformSpec

#: The modules containing specification clauses (every ``declare``/
#: ``cover`` site in the tree lives in one of these).
SPEC_MODULES: Tuple[str, ...] = (
    "repro.pathres.resolve",
    "repro.fsops.attr",
    "repro.fsops.dirops",
    "repro.fsops.link",
    "repro.fsops.mkdir",
    "repro.fsops.open_spec",
    "repro.fsops.rename",
    "repro.fsops.rmdir",
    "repro.fsops.stat_ops",
    "repro.fsops.symlink_ops",
    "repro.fsops.truncate",
    "repro.fsops.unlink",
    "repro.osapi.transition",
)

DEAD = "dead"
REACHABLE = "reachable"
UNKNOWN = "unknown"

#: Three-valued-logic bottom: "not statically known".
_UNKNOWN = object()
#: Constant-propagation tombstone for names assigned on some branch.
_INVALID = object()


@dataclasses.dataclass(frozen=True)
class CoverSite:
    """One ``cover(name)`` call site with its dominating conditions."""

    clause: str
    module: str
    lineno: int
    #: ``(test expression, polarity)`` conjuncts; the site executes only
    #: if every test evaluates to its polarity.
    conds: Tuple[Tuple[ast.expr, bool], ...]
    #: Straight-line local bindings visible at the site (name -> expr).
    bindings: Dict[str, object]


# ---------------------------------------------------------------------------
# guard extraction
# ---------------------------------------------------------------------------

def _terminates(stmts: List[ast.stmt]) -> bool:
    """Does every path through ``stmts`` leave the enclosing function?

    Conservative: only ``return``/``raise`` (possibly behind an
    exhaustive ``if``/``else``) count.  Used to turn an early-return
    guard into a negated conjunct for the code that follows it.
    """
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise)):
        return True
    if isinstance(last, ast.If):
        return (_terminates(last.body) and last.orelse != []
                and _terminates(last.orelse))
    return False


def _assigned_names(stmts: Iterable[ast.stmt]) -> set:
    """Every local name any statement in ``stmts`` may (re)bind."""
    names: set = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
    return names


def _clause_of_call(node: ast.Call) -> Optional[str]:
    """The literal clause name of a ``cover(...)``/``*.hit(...)`` call."""
    func = node.func
    named = (isinstance(func, ast.Name) and func.id == "cover") or (
        isinstance(func, ast.Attribute) and func.attr == "hit")
    if not named or not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None


class _SiteCollector:
    """Walks one module's statements collecting :class:`CoverSite`\\ s."""

    def __init__(self, module: str):
        self.module = module
        self.sites: List[CoverSite] = []

    def walk_module(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self._walk(node.body, [], {})

    def _walk(self, stmts: List[ast.stmt],
              conds: List[Tuple[ast.expr, bool]],
              env: Dict[str, object]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, conds, env)

    def _walk_stmt(self, stmt: ast.stmt,
                   conds: List[Tuple[ast.expr, bool]],
                   env: Dict[str, object]) -> None:
        # Record cover() calls appearing anywhere inside this statement
        # *except* under a nested If/loop/function, which recurse with
        # refined conditions below.
        if isinstance(stmt, (ast.Expr, ast.Return, ast.Assign,
                             ast.AugAssign, ast.AnnAssign)):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    clause = _clause_of_call(node)
                    if clause is not None:
                        self.sites.append(CoverSite(
                            clause=clause, module=self.module,
                            lineno=node.lineno, conds=tuple(conds),
                            bindings=dict(env)))
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                     ast.Name):
                env[stmt.targets[0].id] = stmt.value
            else:
                for name in _assigned_names([stmt]):
                    env[name] = _INVALID
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            for name in _assigned_names([stmt]):
                env[name] = _INVALID
        elif isinstance(stmt, ast.Assert):
            conds.append((stmt.test, True))
        elif isinstance(stmt, ast.If):
            self._walk(stmt.body, conds + [(stmt.test, True)],
                       dict(env))
            self._walk(stmt.orelse, conds + [(stmt.test, False)],
                       dict(env))
            # Early-return guards constrain the continuation; branches
            # that merge back invalidate whatever they may rebind.
            if _terminates(stmt.body):
                conds.append((stmt.test, False))
            elif stmt.orelse and _terminates(stmt.orelse):
                conds.append((stmt.test, True))
            for name in _assigned_names(stmt.body + stmt.orelse):
                env[name] = _INVALID
        elif isinstance(stmt, ast.While):
            body_conds = conds + [(stmt.test, True)]
            self._loop_body(stmt.body, body_conds, env)
            self._walk(stmt.orelse, list(conds), dict(env))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._loop_body(stmt.body, list(conds), env)
            self._walk(stmt.orelse, list(conds), dict(env))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk(stmt.body, conds, env)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, list(conds), dict(env))
            poisoned = dict(env)
            for name in _assigned_names(stmt.body):
                poisoned[name] = _INVALID
            for handler in stmt.handlers:
                self._walk(handler.body, list(conds), dict(poisoned))
            self._walk(stmt.orelse, list(conds), dict(env))
            self._walk(stmt.finalbody, list(conds), dict(poisoned))
            for name in _assigned_names([stmt]):
                env[name] = _INVALID
        elif isinstance(stmt, ast.FunctionDef):
            # A closure only exists if its def executed, so the def-site
            # conditions dominate every call.  Its parameters shadow.
            inner = dict(env)
            for arg in (stmt.args.args + stmt.args.posonlyargs
                        + stmt.args.kwonlyargs):
                inner[arg.arg] = _INVALID
            self._walk(stmt.body, list(conds), inner)
            env[stmt.name] = _INVALID

    def _loop_body(self, body: List[ast.stmt],
                   conds: List[Tuple[ast.expr, bool]],
                   env: Dict[str, object]) -> None:
        inner = dict(env)
        for name in _assigned_names(body):
            inner[name] = _INVALID
        self._walk(body, conds, inner)
        for name in _assigned_names(body):
            env[name] = _INVALID


# ---------------------------------------------------------------------------
# partial evaluation against one PlatformSpec
# ---------------------------------------------------------------------------

#: Functions whose calls may be statically evaluated.  Everything else
#: (isinstance, len, resolution results...) is runtime state: unknown.
_PURE_BUILTINS = ("bool",)

_MAX_DEPTH = 12


def _eval(expr, spec: PlatformSpec, ns: dict,
          env: Dict[str, object], depth: int = 0):
    """Evaluate ``expr`` to a value or :data:`_UNKNOWN` (three-valued)."""
    if depth > _MAX_DEPTH or expr is _INVALID or expr is None:
        return _UNKNOWN
    if isinstance(expr, ast.Constant):
        return expr.value
    if isinstance(expr, ast.Name):
        if expr.id == "spec":
            return spec
        if expr.id in env:
            return _eval(env[expr.id], spec, ns, env, depth + 1)
        if expr.id in ns:
            return ns[expr.id]
        return _UNKNOWN
    if isinstance(expr, ast.Attribute):
        base = _eval(expr.value, spec, ns, env, depth + 1)
        if base is _UNKNOWN:
            return _UNKNOWN
        try:
            return getattr(base, expr.attr)
        except AttributeError:
            return _UNKNOWN
    if isinstance(expr, ast.BoolOp):
        values = [_eval(v, spec, ns, env, depth + 1)
                  for v in expr.values]
        if isinstance(expr.op, ast.And):
            if any(v is not _UNKNOWN and not v for v in values):
                return False
            if all(v is not _UNKNOWN for v in values):
                return values[-1]
            return _UNKNOWN
        if any(v is not _UNKNOWN and v for v in values):
            return True
        if all(v is not _UNKNOWN for v in values):
            return values[-1]
        return _UNKNOWN
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        value = _eval(expr.operand, spec, ns, env, depth + 1)
        return _UNKNOWN if value is _UNKNOWN else not value
    if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
        left = _eval(expr.left, spec, ns, env, depth + 1)
        right = _eval(expr.comparators[0], spec, ns, env, depth + 1)
        if left is _UNKNOWN or right is _UNKNOWN:
            return _UNKNOWN
        op = expr.ops[0]
        try:
            if isinstance(op, ast.Is):
                return left is right
            if isinstance(op, ast.IsNot):
                return left is not right
            if isinstance(op, ast.Eq):
                return left == right
            if isinstance(op, ast.NotEq):
                return left != right
            if isinstance(op, ast.Lt):
                return left < right
            if isinstance(op, ast.LtE):
                return left <= right
            if isinstance(op, ast.Gt):
                return left > right
            if isinstance(op, ast.GtE):
                return left >= right
            if isinstance(op, ast.In):
                return left in right
            if isinstance(op, ast.NotIn):
                return left not in right
        except TypeError:
            return _UNKNOWN
        return _UNKNOWN
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _PURE_BUILTINS \
                and len(expr.args) == 1:
            value = _eval(expr.args[0], spec, ns, env, depth + 1)
            return _UNKNOWN if value is _UNKNOWN else bool(value)
        if isinstance(func, ast.Attribute) and func.attr == "allows":
            base = _eval(func.value, spec, ns, env, depth + 1)
            args = [_eval(a, spec, ns, env, depth + 1)
                    for a in expr.args]
            if isinstance(base, PlatformSpec) and all(
                    isinstance(a, str) for a in args):
                return base.allows(*args)
        return _UNKNOWN
    if isinstance(expr, ast.BinOp):
        left = _eval(expr.left, spec, ns, env, depth + 1)
        right = _eval(expr.right, spec, ns, env, depth + 1)
        if left is _UNKNOWN or right is _UNKNOWN:
            return _UNKNOWN
        try:
            if isinstance(expr.op, ast.BitAnd):
                return left & right
            if isinstance(expr.op, ast.BitOr):
                return left | right
        except TypeError:
            return _UNKNOWN
        return _UNKNOWN
    return _UNKNOWN


def _site_verdict(site: CoverSite, spec: PlatformSpec,
                  ns: dict) -> str:
    unknown = False
    for test, polarity in site.conds:
        value = _eval(test, spec, ns, site.bindings)
        if value is _UNKNOWN:
            unknown = True
        elif bool(value) != polarity:
            return DEAD
    return UNKNOWN if unknown else REACHABLE


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class DeadClauseReport:
    """Per-platform clause verdicts plus the underlying sites."""

    #: platform -> clause -> {dead, reachable, unknown}.
    verdicts: Dict[str, Dict[str, str]]
    sites: Tuple[CoverSite, ...]

    def dead(self, platform: str) -> FrozenSet[str]:
        return frozenset(name for name, v in
                         self.verdicts[platform].items() if v == DEAD)

    def dead_by_platform(self) -> Dict[str, FrozenSet[str]]:
        return {platform: self.dead(platform)
                for platform in self.verdicts}

    def sites_for(self, clause: str) -> List[CoverSite]:
        return [site for site in self.sites if site.clause == clause]

    def to_dict(self) -> dict:
        """JSON-ready form (the CI dead-clause artifact)."""
        platforms = {}
        for platform, clauses in sorted(self.verdicts.items()):
            platforms[platform] = {
                DEAD: sorted(n for n, v in clauses.items()
                             if v == DEAD),
                REACHABLE: sorted(n for n, v in clauses.items()
                                  if v == REACHABLE),
                UNKNOWN: sorted(n for n, v in clauses.items()
                                if v == UNKNOWN),
            }
        return {"platforms": platforms,
                "clauses": len(next(iter(self.verdicts.values()), {})),
                "sites": len(self.sites)}


def _collect_sites() -> Tuple[Tuple[CoverSite, ...], Dict[str, dict]]:
    """Parse every spec module; returns (sites, module namespaces)."""
    sites: List[CoverSite] = []
    namespaces: Dict[str, dict] = {}
    for modname in SPEC_MODULES:
        module = importlib.import_module(modname)
        namespaces[modname] = vars(module)
        source_path = module.__file__
        assert source_path is not None
        with open(source_path, "r") as handle:
            tree = ast.parse(handle.read())
        collector = _SiteCollector(modname)
        collector.walk_module(tree)
        sites.extend(collector.sites)
    return tuple(sites), namespaces


def analyze(platforms: Optional[Iterable[str]] = None
            ) -> DeadClauseReport:
    """Run the analysis for the named platforms (default: all specs)."""
    names = list(platforms) if platforms is not None else sorted(SPECS)
    sites, namespaces = _collect_sites()
    verdicts: Dict[str, Dict[str, str]] = {}
    for platform in names:
        spec = SPECS[platform]
        clause_verdicts: Dict[str, str] = {}
        for site in sites:
            verdict = _site_verdict(site, spec,
                                    namespaces[site.module])
            prior = clause_verdicts.get(site.clause)
            if prior is None:
                clause_verdicts[site.clause] = verdict
            elif REACHABLE in (prior, verdict):
                clause_verdicts[site.clause] = REACHABLE
            elif UNKNOWN in (prior, verdict):
                clause_verdicts[site.clause] = UNKNOWN
        verdicts[platform] = clause_verdicts
    return DeadClauseReport(verdicts=verdicts, sites=sites)


_REPORT: Optional[DeadClauseReport] = None


def dead_clause_report() -> DeadClauseReport:
    """The all-platform report, computed once per process (the spec
    sources cannot change underneath a running checker)."""
    global _REPORT
    if _REPORT is None:
        _REPORT = analyze()
    return _REPORT


def install_dead_clauses(registry: CoverageRegistry = REGISTRY
                         ) -> DeadClauseReport:
    """Install the per-platform statically-dead sets into ``registry``.

    Idempotent; every consumer that computes a coverage denominator or
    frontier (``repro coverage``, ``repro fuzz``, the guided-fuzzing
    bench) calls this first so their views agree bit-for-bit.
    """
    report = dead_clause_report()
    registry.install_static_dead(report.dead_by_platform())
    return report
