"""Abstract interpretation of test scripts: well-formed vs doomed.

A script step is *doomed* when no execution of the script can make it
return ``Ok`` — e.g. a ``read`` on a descriptor number the process can
never have allocated, a ``pwrite`` at a negative offset, or a ``stat``
of a path naming a component no command in the script ever creates.
Doomed steps still exercise spec error clauses, but a script consisting
of *nothing but* doomed steps is error soup: it can never grow the
success-path coverage the fuzzer's energy model rewards, so
:func:`rejects` lets :mod:`repro.fuzz.mutate` drop such mutants before
paying for execution.

The interpreter is deliberately one-sided.  *Doomed* is a proof
obligation — it must hold under the concrete :class:`KernelFS` of every
configuration, including the quirk table (the zero-byte-write-to-bad-fd
quirk can turn an EBADF into ``Ok(0)``, so zero-length writes are never
doomed for descriptor reasons).  *Well-formed* promises nothing: the
step may still fail at runtime; the analysis only claims it could not
prove doom.  Soundness is pinned by a property test executing doomed
scripts under the real executor on clean and quirky configurations.

The abstract state tracked per process mirrors exactly the facts the
executor makes deterministic:

* descriptor bounds — ``next_fd`` starts at 3 and only ever grows, and
  at most one descriptor is allocated per ``open``, so after *k* opens
  any fd outside ``[3, 3+k)`` is provably never open (dually for
  directory handles, which start at 1);
* the created-name namespace — apart from the root, every object's name
  was the final path component of some earlier ``mkdir``/``symlink``/
  ``open O_CREAT``/``link``/``rename``, so a path component that no
  prior command could have created can never resolve;
* process identity — the same live-set rule :func:`repro.fuzz.mutate.
  sanitize` enforces (duplicate creates, destroys of dead pids or of
  the root process are *ill-formed*; ``sanitize`` repairs them by
  dropping the directive).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.core import commands as C
from repro.core.flags import OpenFlag, SeekWhence
from repro.pathres.resolve import NAME_MAX, PATH_MAX
from repro.script.ast import (CreateEvent, DestroyEvent, Script,
                              ScriptItem, ScriptStep)

WELL_FORMED = "well-formed"
DOOMED = "doomed"
ILL_FORMED = "ill-formed"

#: First file descriptor / directory handle a fresh process allocates.
_FIRST_FD = 3
_FIRST_DH = 1

_SPECIAL_COMPONENTS = (".", "..")


@dataclasses.dataclass(frozen=True)
class StepVerdict:
    """The verdict for one script item."""

    index: int
    item: ScriptItem
    verdict: str
    #: Human-readable explanation (empty for well-formed items).
    reason: str = ""

    def render(self) -> str:
        if isinstance(self.item, ScriptStep):
            text = f"{self.item.pid}: {self.item.cmd.render()}"
        elif isinstance(self.item, CreateEvent):
            text = (f"create {self.item.pid} "
                    f"{self.item.uid} {self.item.gid}")
        else:
            text = f"destroy {self.item.pid}"
        suffix = f"  ({self.reason})" if self.reason else ""
        return f"[{self.verdict:>11}] {text}{suffix}"


@dataclasses.dataclass(frozen=True)
class ScriptReport:
    """Per-item verdicts plus the whole-script classification.

    The script verdict is ``ill-formed`` if any *directive* violates the
    process-lifecycle rules, ``doomed`` if it has calls and every call
    is doomed, else ``well-formed``.
    """

    script: Script
    steps: Tuple[StepVerdict, ...]
    verdict: str

    def doomed_steps(self) -> List[StepVerdict]:
        return [s for s in self.steps if s.verdict == DOOMED]

    def render(self) -> str:
        lines = [f"script {self.script.name}: {self.verdict}"]
        lines.extend(step.render() for step in self.steps)
        return "\n".join(lines)


def _encoded(text: str) -> bytes:
    # Mirror of repro.pathres.resolve._encoded: limits are on UTF-8
    # bytes, tolerating the lone surrogates os.fsdecode produces.
    return text.encode("utf-8", "surrogatepass")


def _path_doom(path: str, candidates: Set[str], *,
               final_may_create: bool) -> Optional[str]:
    """Why resolving ``path`` can never succeed, or None.

    ``final_may_create`` marks creation ops (mkdir, open O_CREAT, the
    destination of link/rename/symlink): their final component is
    allowed to be a name nothing created yet.
    """
    if path == "":
        return "empty path always resolves to ENOENT"
    if len(_encoded(path)) > PATH_MAX:
        return f"path is {len(_encoded(path))} bytes > PATH_MAX"
    comps = [c for c in path.split("/") if c != ""]
    for comp in comps:
        if len(_encoded(comp)) > NAME_MAX:
            return (f"component {comp[:16]!r}... is "
                    f"{len(_encoded(comp))} bytes > NAME_MAX")
    if final_may_create and comps and \
            comps[-1] not in _SPECIAL_COMPONENTS:
        comps = comps[:-1]
    for comp in comps:
        if comp in _SPECIAL_COMPONENTS:
            continue
        if comp not in candidates:
            return (f"component {comp!r} is never created by any "
                    "command in the script")
    return None


def _created_name(path: str) -> Optional[str]:
    """The namespace entry a successful creation op adds, if any."""
    comps = [c for c in path.split("/") if c != ""]
    if comps and comps[-1] not in _SPECIAL_COMPONENTS:
        return comps[-1]
    return None


#: (existence path attrs, creation path attrs) per path-taking command.
_PATH_ARGS = {
    C.LstatCmd: (("path",), ()),
    C.StatCmd: (("path",), ()),
    C.Readlink: (("path",), ()),
    C.Opendir: (("path",), ()),
    C.Unlink: (("path",), ()),
    C.Rmdir: (("path",), ()),
    C.Truncate: (("path",), ()),
    C.Chdir: (("path",), ()),
    C.Chmod: (("path",), ()),
    C.Chown: (("path",), ()),
    C.Mkdir: ((), ("path",)),
    C.Symlink: ((), ("linkpath",)),  # the target is stored, not resolved
    C.Link: (("src",), ("dst",)),
    C.Rename: (("src",), ("dst",)),
}


class _ProcState:
    """Descriptor-allocation bounds for one live process."""

    __slots__ = ("opens", "opendirs")

    def __init__(self) -> None:
        self.opens = 0
        self.opendirs = 0


def _doom_reason(cmd: C.OsCommand, proc: _ProcState,
                 candidates: Set[str],
                 quirks) -> Optional[str]:
    """Why ``cmd`` can never return Ok from this abstract state."""
    if isinstance(cmd, C.Umask):
        return None

    if quirks is not None and quirks.chmod_errno is not None and \
            isinstance(cmd, C.Chmod):
        return (f"configuration {quirks.name!r} fails every chmod "
                f"with {quirks.chmod_errno.name}")

    if isinstance(cmd, (C.Pread, C.Pwrite)) and cmd.offset < 0:
        return f"negative offset {cmd.offset} is rejected up front"
    if isinstance(cmd, (C.Read, C.Pread)) and cmd.count < 0:
        return f"negative count {cmd.count} cannot be transferred"
    if isinstance(cmd, C.Lseek) and cmd.whence is SeekWhence.SEEK_SET \
            and cmd.offset < 0:
        return f"seek to negative position {cmd.offset}"

    if isinstance(cmd, (C.Close, C.Read, C.Write, C.Lseek, C.Pread,
                        C.Pwrite)):
        # A zero-length write to a bad descriptor is implementation-
        # defined and *may succeed* (spec switch + kernel quirk), so it
        # is never doomed for descriptor reasons.
        zero_write = isinstance(cmd, (C.Write, C.Pwrite)) and \
            len(cmd.data) == 0
        bad = cmd.fd < _FIRST_FD or cmd.fd >= _FIRST_FD + proc.opens
        if bad and not zero_write:
            return (f"fd {cmd.fd} cannot be open: the process has "
                    f"issued only {proc.opens} open(s), so live fds "
                    f"lie in [{_FIRST_FD}, {_FIRST_FD + proc.opens})")
        return None

    if isinstance(cmd, (C.Closedir, C.Readdir, C.Rewinddir)):
        if cmd.dh < _FIRST_DH or \
                cmd.dh >= _FIRST_DH + proc.opendirs:
            return (f"dh {cmd.dh} cannot be open: the process has "
                    f"issued only {proc.opendirs} opendir(s)")
        return None

    if isinstance(cmd, C.Open):
        creating = bool(cmd.flags & OpenFlag.O_CREAT)
        return _path_doom(cmd.path, candidates,
                          final_may_create=creating)

    exist_attrs, create_attrs = _PATH_ARGS.get(type(cmd), ((), ()))
    for attr in exist_attrs:
        reason = _path_doom(getattr(cmd, attr), candidates,
                            final_may_create=False)
        if reason is not None:
            return reason
    for attr in create_attrs:
        reason = _path_doom(getattr(cmd, attr), candidates,
                            final_may_create=True)
        if reason is not None:
            return reason
    return None


def _apply_effects(cmd: C.OsCommand, proc: _ProcState,
                   candidates: Set[str]) -> None:
    """Account for what a (possibly) successful ``cmd`` may create."""
    if isinstance(cmd, C.Open):
        proc.opens += 1
        if cmd.flags & OpenFlag.O_CREAT:
            name = _created_name(cmd.path)
            if name is not None:
                candidates.add(name)
    elif isinstance(cmd, C.Opendir):
        proc.opendirs += 1
    elif isinstance(cmd, (C.Mkdir, C.Symlink, C.Link, C.Rename)):
        path = cmd.linkpath if isinstance(cmd, C.Symlink) else (
            cmd.dst if isinstance(cmd, (C.Link, C.Rename)) else
            cmd.path)
        name = _created_name(path)
        if name is not None:
            candidates.add(name)


def classify_script(script: Script, quirks=None) -> ScriptReport:
    """Interpret ``script`` abstractly, classifying every item.

    ``quirks`` (a :class:`repro.fsimpl.quirks.Quirks`) optionally
    sharpens the verdicts with configuration-level facts (e.g. a
    configuration whose every ``chmod`` fails); without it verdicts
    hold for every configuration.
    """
    live: Set[int] = {1}
    procs: Dict[int, _ProcState] = {1: _ProcState()}
    candidates: Set[str] = set()
    steps: List[StepVerdict] = []
    any_ill = False
    call_verdicts: List[str] = []

    for index, item in enumerate(script.items):
        if isinstance(item, CreateEvent):
            if item.pid in live:
                any_ill = True
                steps.append(StepVerdict(
                    index, item, ILL_FORMED,
                    f"pid {item.pid} is already live"))
            else:
                live.add(item.pid)
                procs[item.pid] = _ProcState()
                steps.append(StepVerdict(index, item, WELL_FORMED))
        elif isinstance(item, DestroyEvent):
            if item.pid not in live or item.pid == 1:
                any_ill = True
                reason = ("the root process cannot be destroyed"
                          if item.pid == 1 else
                          f"pid {item.pid} is not live")
                steps.append(StepVerdict(index, item, ILL_FORMED,
                                         reason))
            else:
                live.discard(item.pid)
                procs.pop(item.pid, None)
                steps.append(StepVerdict(index, item, WELL_FORMED))
        else:
            assert isinstance(item, ScriptStep)
            if item.pid not in live:
                # The executor auto-creates on first use (and afresh
                # after a destroy), resetting descriptor counters.
                live.add(item.pid)
                procs[item.pid] = _ProcState()
            proc = procs[item.pid]
            reason = _doom_reason(item.cmd, proc, candidates, quirks)
            if reason is None:
                _apply_effects(item.cmd, proc, candidates)
                steps.append(StepVerdict(index, item, WELL_FORMED))
                call_verdicts.append(WELL_FORMED)
            else:
                steps.append(StepVerdict(index, item, DOOMED, reason))
                call_verdicts.append(DOOMED)

    if any_ill:
        verdict = ILL_FORMED
    elif call_verdicts and all(v == DOOMED for v in call_verdicts):
        verdict = DOOMED
    else:
        verdict = WELL_FORMED
    return ScriptReport(script=script, steps=tuple(steps),
                        verdict=verdict)


def rejects(script: Script) -> bool:
    """Should the fuzzer drop this mutant before execution?

    Only pure error soup is rejected: every call doomed *and* more than
    one call (single-call probes of error clauses — e.g. the handwritten
    ``path_too_long`` parity script — are legitimate tests and must
    never be dropped).
    """
    if script.call_count() < 2:
        return False
    return classify_script(script).verdict == DOOMED
