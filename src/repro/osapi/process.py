"""Per-process state and open file descriptions.

Mirrors the paper's ``per_process_state`` (working directory, file
descriptors, directory handles, run state, file-creation mask, ids) and
``fid_state`` (the state of an open file description, held in the
OS-global ``oss_fid_table``).
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.core.commands import OsCommand
from repro.core.flags import OpenFlag
from repro.core.values import ReturnValue
from repro.state.heap import DirRef, FileRef
from repro.util.fdict import fdict


@dataclasses.dataclass(frozen=True)
class RsRunning:
    """The process is running and may make a libc call (receptivity)."""


@dataclasses.dataclass(frozen=True)
class RsCalling:
    """The process has made a call that has not yet taken effect."""

    cmd: OsCommand


@dataclasses.dataclass(frozen=True)
class RsReturning:
    """The call has taken effect; its return value is pending."""

    ret: ReturnValue


RunState = Union[RsRunning, RsCalling, RsReturning]


@dataclasses.dataclass(frozen=True)
class FidState:
    """An open file description: target object, offset, and open flags."""

    target: Union[FileRef, DirRef]
    offset: int
    flags: OpenFlag


@dataclasses.dataclass(frozen=True)
class Process:
    """Per-process state tracked by the operating system."""

    cwd: DirRef
    uid: int
    gid: int
    groups: frozenset
    umask: int
    fds: fdict  # fd (int) -> fid (int)
    dhs: fdict  # directory-handle number (int) -> DhState
    run: RunState
    next_fd: int = 3
    next_dh: int = 1

    def with_run(self, run: RunState) -> "Process":
        return dataclasses.replace(self, run=run)
