"""The transition function ``os_trans`` of the model's LTS.

``os_trans : spec -> os_state -> os_label -> finset (os_state or special)``

This module glues the lower layers together: it resolves paths (using the
per-command follow policy), invokes the file-system module on resolved
names, and manages processes, file descriptors, open file descriptions and
directory handles.  Calls are *not* atomic: an ``OS_CALL`` label moves the
process into a calling state, an internal tau transition executes the
command (possibly nondeterministically), and an ``OS_RETURN`` label
resolves the pending return (paper section 6.3).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, List

from repro.core import commands as C
from repro.core.combinators import Outcome
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.core.flags import OpenFlag, SeekWhence, FileKind
from repro.core.labels import (OsCall, OsCreate, OsDestroy, OsLabel,
                               OsReturn, OsSignal, OsSpin, OsTau)
from repro.core.platform import PlatformSpec
from repro.core.values import (Err, Ok, ReturnValue, RvBytes, RvNone, RvNum,
                               Special)
from repro.fsops import (dh_open, dh_readdir_outcomes, dh_rewind, fsop_chmod,
                         fsop_chown, fsop_link, fsop_lstat, fsop_mkdir,
                         fsop_open, fsop_readlink, fsop_rename, fsop_rmdir,
                         fsop_stat, fsop_symlink, fsop_truncate, fsop_unlink)
from repro.fsops.common import FsEnv, may_read_dir, may_search_dir
from repro.osapi.os_state import (OsState, OsStateOrSpecial, SpecialOsState)
from repro.osapi.process import (FidState, Process, RsCalling, RsReturning,
                                 RsRunning)
from repro.core.platform import LinkSymlinkBehaviour
from repro.pathres.resname import Follow, RnDir, RnError, RnFile, RnNone
from repro.pathres.resolve import PermEnv, resolve
from repro.state.heap import DirRef, FileRef
from repro.util.fdict import fdict

declare("osapi.create_process")
declare("osapi.destroy_process")
declare("osapi.call")
declare("osapi.return")
declare("osapi.close.bad_fd")
declare("osapi.close.success")
declare("osapi.read.bad_fd")
declare("osapi.read.bad_count")
declare("osapi.read.is_dir")
declare("osapi.read.not_readable")
declare("osapi.read.eof")
declare("osapi.read.partial")
declare("osapi.write.bad_fd")
declare("osapi.write.zero_bad_fd_loose")
declare("osapi.write.not_writable")
declare("osapi.write.append_seeks_end")
declare("osapi.write.partial")
declare("osapi.pread.negative_offset")
declare("osapi.pwrite.negative_offset")
declare("osapi.pwrite.append_quirk", platforms=("linux",))
declare("osapi.lseek.bad_fd")
declare("osapi.lseek.negative_result")
declare("osapi.lseek.success")
declare("osapi.opendir.not_dir")
declare("osapi.opendir.noent")
declare("osapi.opendir.no_read_permission")
declare("osapi.opendir.success")
declare("osapi.readdir.bad_handle")
declare("osapi.closedir.bad_handle")
declare("osapi.closedir.success")
declare("osapi.rewinddir.bad_handle")
declare("osapi.rewinddir.success")
declare("osapi.chdir.not_dir")
declare("osapi.chdir.noent")
declare("osapi.chdir.no_search_permission")
declare("osapi.chdir.success")
declare("osapi.umask.success")
declare("osapi.readlink.osx_trailing_quirk", platforms=("osx",))
declare("osapi.link.either_resolution", platforms=("posix",))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _perm_env(spec: PlatformSpec, proc: Process) -> PermEnv:
    return PermEnv(uid=proc.uid, gid=proc.gid, groups=proc.groups,
                   enabled=spec.permissions_enabled)


def _fs_env(spec: PlatformSpec, proc: Process) -> FsEnv:
    return FsEnv(spec=spec, perm=_perm_env(spec, proc), umask=proc.umask)


def _returning(state: OsState, pid: int, ret: ReturnValue) -> OsState:
    return state.with_proc(pid, state.proc(pid).with_run(RsReturning(ret)))


def _err(state: OsState, pid: int, *errnos: Errno) -> FrozenSet[OsState]:
    return frozenset(_returning(state, pid, Err(e)) for e in errnos)


def _ok(state: OsState, pid: int, value=None) -> FrozenSet[OsState]:
    return frozenset({_returning(state, pid,
                                 Ok(value if value is not None
                                    else RvNone()))})


def _convert_outcomes(state: OsState, pid: int,
                      outcomes: Iterable[Outcome]
                      ) -> FrozenSet[OsStateOrSpecial]:
    """Lift file-system-module outcomes into OS states."""
    lifted: set[OsStateOrSpecial] = set()
    for out in outcomes:
        if isinstance(out.ret, Special):
            lifted.add(SpecialOsState(out.ret.kind, out.ret.detail))
        else:
            lifted.add(_returning(state.with_fs(out.state), pid, out.ret))
    return frozenset(lifted)


def _refresh_handles(state: OsStateOrSpecial) -> OsStateOrSpecial:
    """Fold directory changes into every open handle, eagerly.

    The paper is explicit that the model must "track all changes to a
    directory from the point that opendir is called": updating handles
    lazily at the next readdir would conflate a delete-then-re-add of
    the same name with no change at all.  Handles of *every* process are
    refreshed — modifications by other processes are within scope.
    """
    from repro.fsops.dirops import dh_update

    if isinstance(state, SpecialOsState):
        return state
    procs = state.procs
    changed = False
    for pid, proc in state.procs.items():
        if not proc.dhs:
            continue
        new_dhs = {dh: dh_update(state.fs, dh_state)
                   for dh, dh_state in proc.dhs.items()}
        if any(new_dhs[dh] != proc.dhs[dh] for dh in new_dhs):
            procs = procs.set(pid, dataclasses.replace(
                proc, dhs=proc.dhs.update_with(new_dhs)))
            changed = True
    if not changed:
        return state
    return dataclasses.replace(state, procs=procs)


# ---------------------------------------------------------------------------
# command execution (the tau transition body)
# ---------------------------------------------------------------------------

def exec_call(spec: PlatformSpec, state: OsState,
              pid: int) -> FrozenSet[OsStateOrSpecial]:
    """Execute process ``pid``'s pending call, returning all outcomes.

    Every outcome has its directory handles refreshed so that open
    handles observe the change immediately (see :func:`_refresh_handles`).
    """
    return frozenset(_refresh_handles(out)
                     for out in _exec_call_inner(spec, state, pid))


def _exec_call_inner(spec: PlatformSpec, state: OsState,
                     pid: int) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    assert isinstance(proc.run, RsCalling)
    cmd = proc.run.cmd
    env = _fs_env(spec, proc)
    fs = state.fs

    def rn_of(path: str, follow: Follow):
        return resolve(spec, fs, proc.cwd, path, follow, env.perm)

    # -- pure path commands, delegated to the file-system module ---------
    if isinstance(cmd, C.Mkdir):
        return _convert_outcomes(state, pid, fsop_mkdir(
            env, fs, rn_of(cmd.path, Follow.NOFOLLOW), cmd.mode))
    if isinstance(cmd, C.Rmdir):
        return _convert_outcomes(state, pid, fsop_rmdir(
            env, fs, rn_of(cmd.path, Follow.NOFOLLOW)))
    if isinstance(cmd, C.Unlink):
        return _convert_outcomes(state, pid, fsop_unlink(
            env, fs, rn_of(cmd.path, Follow.NOFOLLOW)))
    if isinstance(cmd, C.StatCmd):
        return _convert_outcomes(state, pid, fsop_stat(
            env, fs, rn_of(cmd.path, Follow.FOLLOW)))
    if isinstance(cmd, C.LstatCmd):
        return _convert_outcomes(state, pid, fsop_lstat(
            env, fs, rn_of(cmd.path, Follow.NOFOLLOW)))
    if isinstance(cmd, C.Truncate):
        return _convert_outcomes(state, pid, fsop_truncate(
            env, fs, rn_of(cmd.path, Follow.FOLLOW), cmd.length))
    if isinstance(cmd, C.Chmod):
        return _convert_outcomes(state, pid, fsop_chmod(
            env, fs, rn_of(cmd.path, Follow.FOLLOW), cmd.mode))
    if isinstance(cmd, C.Chown):
        return _convert_outcomes(state, pid, fsop_chown(
            env, fs, rn_of(cmd.path, Follow.FOLLOW), cmd.uid, cmd.gid))
    if isinstance(cmd, C.Symlink):
        return _convert_outcomes(state, pid, fsop_symlink(
            env, fs, cmd.target, rn_of(cmd.linkpath, Follow.NOFOLLOW)))
    if isinstance(cmd, C.Rename):
        return _convert_outcomes(state, pid, fsop_rename(
            env, fs, rn_of(cmd.src, Follow.NOFOLLOW),
            rn_of(cmd.dst, Follow.NOFOLLOW)))
    if isinstance(cmd, C.Link):
        return _exec_link(spec, state, pid, env, cmd)
    if isinstance(cmd, C.Readlink):
        return _exec_readlink(spec, state, pid, env, cmd)
    if isinstance(cmd, C.Open):
        return _exec_open(spec, state, pid, env, cmd)

    # -- descriptor commands -----------------------------------------------
    if isinstance(cmd, C.Close):
        return _exec_close(state, pid, cmd)
    if isinstance(cmd, C.Read):
        return _exec_read(spec, state, pid, cmd.fd, cmd.count,
                          offset=None)
    if isinstance(cmd, C.Pread):
        if cmd.offset < 0:
            cover("osapi.pread.negative_offset")
            return _err(state, pid, Errno.EINVAL)
        return _exec_read(spec, state, pid, cmd.fd, cmd.count,
                          offset=cmd.offset)
    if isinstance(cmd, C.Write):
        return _exec_write(spec, state, pid, cmd.fd, cmd.data, offset=None)
    if isinstance(cmd, C.Pwrite):
        if cmd.offset < 0:
            cover("osapi.pwrite.negative_offset")
            return _err(state, pid, Errno.EINVAL)
        return _exec_write(spec, state, pid, cmd.fd, cmd.data,
                           offset=cmd.offset)
    if isinstance(cmd, C.Lseek):
        return _exec_lseek(state, pid, cmd)

    # -- directory handles ---------------------------------------------------
    if isinstance(cmd, C.Opendir):
        return _exec_opendir(spec, state, pid, env, cmd)
    if isinstance(cmd, C.Readdir):
        return _exec_readdir(state, pid, cmd)
    if isinstance(cmd, C.Rewinddir):
        return _exec_rewinddir(state, pid, cmd)
    if isinstance(cmd, C.Closedir):
        return _exec_closedir(state, pid, cmd)

    # -- process state ------------------------------------------------------
    if isinstance(cmd, C.Chdir):
        return _exec_chdir(spec, state, pid, env, cmd)
    if isinstance(cmd, C.Umask):
        cover("osapi.umask.success")
        proc2 = dataclasses.replace(proc, umask=cmd.mask & 0o777)
        state2 = state.with_proc(pid, proc2)
        return _ok(state2, pid, RvNum(proc.umask))

    raise NotImplementedError(f"unhandled command: {cmd!r}")


def _exec_link(spec: PlatformSpec, state: OsState, pid: int, env: FsEnv,
               cmd: C.Link) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    fs = state.fs

    def rn_src(follow: Follow):
        return resolve(spec, fs, proc.cwd, cmd.src, follow, env.perm)

    dst = resolve(spec, fs, proc.cwd, cmd.dst, Follow.NOFOLLOW, env.perm)
    behaviour = spec.link_on_symlink
    if behaviour is LinkSymlinkBehaviour.LINK_THE_SYMLINK:
        sources = [rn_src(Follow.NOFOLLOW)]
    elif behaviour is LinkSymlinkBehaviour.FOLLOW_THE_SYMLINK:
        sources = [rn_src(Follow.FOLLOW)]
    else:
        # POSIX: implementation-defined — either resolution is allowed.
        cover("osapi.link.either_resolution")
        sources = [rn_src(Follow.NOFOLLOW), rn_src(Follow.FOLLOW)]
    lifted: set[OsStateOrSpecial] = set()
    for src in sources:
        lifted |= _convert_outcomes(state, pid,
                                    fsop_link(env, fs, src, dst))
    return frozenset(lifted)


def _exec_readlink(spec: PlatformSpec, state: OsState, pid: int,
                   env: FsEnv, cmd: C.Readlink
                   ) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    fs = state.fs
    rn = resolve(spec, fs, proc.cwd, cmd.path, Follow.NOFOLLOW, env.perm)
    lifted = set(_convert_outcomes(state, pid, fsop_readlink(env, fs, rn)))
    if (spec.readlink_trailing_slash_reads_intermediate
            and cmd.path.endswith("/") and cmd.path.strip("/")):
        # OS X quirk (section 7.3.2): readlink "s2/" where s2 -> s1 -> dir
        # returns the contents of s1 instead of EINVAL.
        noforce = dataclasses.replace(
            spec, trailing_slash_follows_final_symlink=False)
        rn1 = resolve(noforce, fs, proc.cwd, cmd.path, Follow.NOFOLLOW,
                      env.perm)
        if isinstance(rn1, RnFile) and \
                fs.file(rn1.fref).kind is FileKind.SYMLINK:
            target = fs.file(rn1.fref).content.decode("utf-8", "replace")
            rn2 = resolve(noforce, fs, rn1.parent, target, Follow.NOFOLLOW,
                          env.perm)
            if isinstance(rn2, RnFile) and \
                    fs.file(rn2.fref).kind is FileKind.SYMLINK:
                cover("osapi.readlink.osx_trailing_quirk")
                lifted.add(_returning(
                    state, pid, Ok(RvBytes(fs.file(rn2.fref).content))))
    return frozenset(lifted)


def _exec_open(spec: PlatformSpec, state: OsState, pid: int, env: FsEnv,
               cmd: C.Open) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    flags = cmd.flags
    if (flags & OpenFlag.O_CREAT and flags & OpenFlag.O_EXCL) or \
            flags & OpenFlag.O_NOFOLLOW:
        follow = Follow.NOFOLLOW
    else:
        follow = Follow.FOLLOW
    rn = resolve(spec, state.fs, proc.cwd, cmd.path, follow, env.perm)
    results = fsop_open(env, state.fs, rn, flags, cmd.mode)
    lifted: set[OsStateOrSpecial] = set()
    for res in results:
        if res.special is not None:
            lifted.add(SpecialOsState(res.special, "open"))
            continue
        if res.err is not None:
            lifted |= _err(state.with_fs(res.fs), pid, res.err)
            continue
        assert res.target is not None
        fid = state.next_fid
        fd = proc.next_fd
        fid_state = FidState(target=res.target, offset=0, flags=flags)
        proc2 = dataclasses.replace(
            proc, fds=proc.fds.set(fd, fid), next_fd=fd + 1)
        state2 = dataclasses.replace(
            state.with_fs(res.fs),
            fids=state.fids.set(fid, fid_state),
            next_fid=fid + 1,
        ).with_proc(pid, proc2)
        lifted.add(_returning(state2, pid, Ok(RvNum(fd))))
    return frozenset(lifted)


def _exec_close(state: OsState, pid: int,
                cmd: C.Close) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    fid = proc.fds.get(cmd.fd)
    if fid is None:
        cover("osapi.close.bad_fd")
        return _err(state, pid, Errno.EBADF)
    cover("osapi.close.success")
    proc2 = dataclasses.replace(proc, fds=proc.fds.remove(cmd.fd))
    state2 = dataclasses.replace(
        state, fids=state.fids.discard(fid)).with_proc(pid, proc2)
    return _ok(state2, pid)


def _allowed_io_lengths(spec: PlatformSpec, n: int) -> Iterable[int]:
    """The transfer lengths enumerated for an n-byte read or write.

    All of 1..n when n is small; otherwise 1..bound plus n itself (the
    compact form discussed in paper section 3 — full enumeration has
    "unnecessary cost for tests with large reads or writes").
    """
    bound = spec.partial_io_bound
    if n <= bound:
        return range(1, n + 1)
    return list(range(1, bound + 1)) + [n]


def _exec_read(spec: PlatformSpec, state: OsState, pid: int, fd: int,
               count: int,
               offset: int | None) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    fid = proc.fds.get(fd)
    if fid is None:
        cover("osapi.read.bad_fd")
        return _err(state, pid, Errno.EBADF)
    fid_state = state.fids[fid]
    if count < 0:
        cover("osapi.read.bad_count")
        return _err(state, pid, Errno.EINVAL)
    if isinstance(fid_state.target, DirRef):
        cover("osapi.read.is_dir")
        return _err(state, pid, Errno.EISDIR)
    if not fid_state.flags.wants_read:
        cover("osapi.read.not_readable")
        return _err(state, pid, Errno.EBADF)
    pos = fid_state.offset if offset is None else offset
    content = state.fs.file(fid_state.target).content
    avail = max(0, len(content) - pos)
    n = min(count, avail)
    if n == 0:
        # End of file (or a zero-byte request): exactly one behaviour.
        cover("osapi.read.eof")
        return _ok(state, pid, RvBytes(b""))
    # The model allows a read to return fewer bytes than requested: one
    # outcome per possible length (possible-next-state enumeration,
    # paper section 3).
    cover("osapi.read.partial")
    outcomes: set[OsStateOrSpecial] = set()
    for k in _allowed_io_lengths(spec, n):
        data = content[pos:pos + k]
        state2 = state
        if offset is None:
            new_fid = dataclasses.replace(fid_state, offset=pos + k)
            state2 = dataclasses.replace(
                state, fids=state.fids.set(fid, new_fid))
        outcomes.add(_returning(state2, pid, Ok(RvBytes(data))))
    return frozenset(outcomes)


def _exec_write(spec: PlatformSpec, state: OsState, pid: int, fd: int,
                data: bytes,
                offset: int | None) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    fid = proc.fds.get(fd)
    if fid is None:
        cover("osapi.write.bad_fd")
        if len(data) == 0 and spec.write_zero_bad_fd_may_succeed:
            # Implementation-defined: writing zero bytes to a bad fd may
            # report success (one of the acceptable variations of §7.2).
            cover("osapi.write.zero_bad_fd_loose")
            return frozenset(_err(state, pid, Errno.EBADF)
                             | _ok(state, pid, RvNum(0)))
        return _err(state, pid, Errno.EBADF)
    fid_state = state.fids[fid]
    if isinstance(fid_state.target, DirRef) or \
            not fid_state.flags.wants_write:
        cover("osapi.write.not_writable")
        return _err(state, pid, Errno.EBADF)
    fref: FileRef = fid_state.target
    size = state.fs.file_size(fref)
    appending = bool(fid_state.flags & OpenFlag.O_APPEND)
    if offset is None:
        pos = size if appending else fid_state.offset
        if appending:
            cover("osapi.write.append_seeks_end")
    else:
        if appending and spec.pwrite_append_ignores_offset:
            # Linux platform convention (section 7.3.3): pwrite+O_APPEND
            # ignores the offset and appends.
            cover("osapi.pwrite.append_quirk")
            pos = size
        else:
            pos = offset
    if len(data) == 0:
        return _ok(state, pid, RvNum(0))
    cover("osapi.write.partial")
    outcomes: set[OsStateOrSpecial] = set()
    for k in _allowed_io_lengths(spec, len(data)):
        fs2 = state.fs.write_span(fref, pos, data[:k])
        state2 = state.with_fs(fs2)
        if offset is None:
            new_fid = dataclasses.replace(fid_state, offset=pos + k)
            state2 = dataclasses.replace(
                state2, fids=state2.fids.set(fid, new_fid))
        outcomes.add(_returning(state2, pid, Ok(RvNum(k))))
    return frozenset(outcomes)


def _exec_lseek(state: OsState, pid: int,
                cmd: C.Lseek) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    fid = proc.fds.get(cmd.fd)
    if fid is None:
        cover("osapi.lseek.bad_fd")
        return _err(state, pid, Errno.EBADF)
    fid_state = state.fids[fid]
    if isinstance(fid_state.target, DirRef):
        size = 0
    else:
        size = state.fs.file_size(fid_state.target)
    base = {SeekWhence.SEEK_SET: 0,
            SeekWhence.SEEK_CUR: fid_state.offset,
            SeekWhence.SEEK_END: size}[cmd.whence]
    new = base + cmd.offset
    if new < 0:
        cover("osapi.lseek.negative_result")
        return _err(state, pid, Errno.EINVAL)
    cover("osapi.lseek.success")
    new_fid = dataclasses.replace(fid_state, offset=new)
    state2 = dataclasses.replace(state, fids=state.fids.set(fid, new_fid))
    return _ok(state2, pid, RvNum(new))


def _exec_opendir(spec: PlatformSpec, state: OsState, pid: int, env: FsEnv,
                  cmd: C.Opendir) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    rn = resolve(spec, state.fs, proc.cwd, cmd.path, Follow.FOLLOW,
                 env.perm)
    if isinstance(rn, RnError):
        return _err(state, pid, rn.errno)
    if isinstance(rn, RnNone):
        cover("osapi.opendir.noent")
        return _err(state, pid, Errno.ENOENT)
    if isinstance(rn, RnFile):
        cover("osapi.opendir.not_dir")
        return _err(state, pid, Errno.ENOTDIR)
    assert isinstance(rn, RnDir)
    if spec.permissions_enabled and not may_read_dir(env, state.fs,
                                                     rn.dref):
        cover("osapi.opendir.no_read_permission")
        return _err(state, pid, Errno.EACCES)
    cover("osapi.opendir.success")
    dh_num = proc.next_dh
    dh_state = dh_open(state.fs, rn.dref)
    proc2 = dataclasses.replace(
        proc, dhs=proc.dhs.set(dh_num, dh_state), next_dh=dh_num + 1)
    return _ok(state.with_proc(pid, proc2), pid, RvNum(dh_num))


def _exec_readdir(state: OsState, pid: int,
                  cmd: C.Readdir) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    dh_state = proc.dhs.get(cmd.dh)
    if dh_state is None:
        cover("osapi.readdir.bad_handle")
        return _err(state, pid, Errno.EBADF)
    outcomes: set[OsStateOrSpecial] = set()
    for dh2, rv in dh_readdir_outcomes(state.fs, dh_state):
        proc2 = dataclasses.replace(proc, dhs=proc.dhs.set(cmd.dh, dh2))
        outcomes.add(_returning(state.with_proc(pid, proc2), pid, Ok(rv)))
    return frozenset(outcomes)


def _exec_rewinddir(state: OsState, pid: int,
                    cmd: C.Rewinddir) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    dh_state = proc.dhs.get(cmd.dh)
    if dh_state is None:
        cover("osapi.rewinddir.bad_handle")
        return _err(state, pid, Errno.EBADF)
    cover("osapi.rewinddir.success")
    proc2 = dataclasses.replace(
        proc, dhs=proc.dhs.set(cmd.dh, dh_rewind(state.fs, dh_state)))
    return _ok(state.with_proc(pid, proc2), pid)


def _exec_closedir(state: OsState, pid: int,
                   cmd: C.Closedir) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    if cmd.dh not in proc.dhs:
        cover("osapi.closedir.bad_handle")
        return _err(state, pid, Errno.EBADF)
    cover("osapi.closedir.success")
    proc2 = dataclasses.replace(proc, dhs=proc.dhs.remove(cmd.dh))
    return _ok(state.with_proc(pid, proc2), pid)


def _exec_chdir(spec: PlatformSpec, state: OsState, pid: int, env: FsEnv,
                cmd: C.Chdir) -> FrozenSet[OsStateOrSpecial]:
    proc = state.proc(pid)
    rn = resolve(spec, state.fs, proc.cwd, cmd.path, Follow.FOLLOW,
                 env.perm)
    if isinstance(rn, RnError):
        return _err(state, pid, rn.errno)
    if isinstance(rn, RnNone):
        cover("osapi.chdir.noent")
        return _err(state, pid, Errno.ENOENT)
    if isinstance(rn, RnFile):
        cover("osapi.chdir.not_dir")
        return _err(state, pid, Errno.ENOTDIR)
    assert isinstance(rn, RnDir)
    if spec.permissions_enabled and not may_search_dir(env, state.fs,
                                                       rn.dref):
        cover("osapi.chdir.no_search_permission")
        return _err(state, pid, Errno.EACCES)
    cover("osapi.chdir.success")
    proc2 = dataclasses.replace(proc, cwd=rn.dref)
    return _ok(state.with_proc(pid, proc2), pid)


# ---------------------------------------------------------------------------
# os_trans
# ---------------------------------------------------------------------------

def os_trans(spec: PlatformSpec, state: OsStateOrSpecial,
             label: OsLabel) -> FrozenSet[OsStateOrSpecial]:
    """The LTS transition function.

    An empty result set means the label is not allowed from this state.
    Special states absorb every label: once behaviour is undefined /
    unspecified, the model imposes no further constraints.
    """
    if isinstance(state, SpecialOsState):
        return frozenset({state})

    if isinstance(label, OsCreate):
        if label.pid in state.procs:
            return frozenset()
        cover("osapi.create_process")
        members = state.groups.get(label.gid, frozenset()) | {label.uid}
        groups = state.groups.set(label.gid, members)
        state2 = dataclasses.replace(state, groups=groups)
        proc = Process(cwd=state.fs.root, uid=label.uid, gid=label.gid,
                       groups=state2.groups_of(label.uid), umask=0o022,
                       fds=fdict(), dhs=fdict(), run=RsRunning())
        return frozenset({state2.with_proc(label.pid, proc)})

    if isinstance(label, OsDestroy):
        proc = state.procs.get(label.pid)
        if proc is None or not isinstance(proc.run, RsRunning):
            return frozenset()
        cover("osapi.destroy_process")
        fids = state.fids
        for fid in proc.fds.values():
            fids = fids.discard(fid)
        return frozenset({dataclasses.replace(
            state, procs=state.procs.remove(label.pid), fids=fids)})

    if isinstance(label, OsCall):
        proc = state.procs.get(label.pid)
        if proc is None or not isinstance(proc.run, RsRunning):
            return frozenset()
        cover("osapi.call")
        return frozenset({state.with_proc(
            label.pid, proc.with_run(RsCalling(label.cmd)))})

    if isinstance(label, OsTau):
        results: set[OsStateOrSpecial] = set()
        for pid, proc in state.procs.items():
            if isinstance(proc.run, RsCalling):
                results |= exec_call(spec, state, pid)
        return frozenset(results)

    if isinstance(label, OsReturn):
        proc = state.procs.get(label.pid)
        if proc is None or not isinstance(proc.run, RsReturning):
            return frozenset()
        if proc.run.ret != label.ret:
            return frozenset()
        cover("osapi.return")
        return frozenset({state.with_proc(
            label.pid, proc.with_run(RsRunning()))})

    if isinstance(label, (OsSignal, OsSpin)):
        # The model never allows a call to kill or hang the process.
        return frozenset()

    raise NotImplementedError(f"unhandled label: {label!r}")


def tau_closure(spec: PlatformSpec,
                states: FrozenSet[OsStateOrSpecial]
                ) -> FrozenSet[OsStateOrSpecial]:
    """All states reachable by executing pending calls in any order.

    This is how the checker copes with concurrency nondeterminism: from
    each state, every interleaving of pending tau transitions is explored
    (paper section 3, "Concurrency nondeterminism via state sets").  The
    original states (with calls still pending) are retained — a pending
    call need not have taken effect yet.
    """
    seen: set[OsStateOrSpecial] = set(states)
    frontier: List[OsStateOrSpecial] = list(states)
    while frontier:
        current = frontier.pop()
        for succ in os_trans(spec, current, OsTau()):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return frozenset(seen)


def allowed_returns(states: Iterable[OsStateOrSpecial],
                    pid: int) -> List[ReturnValue]:
    """The pending return values for ``pid`` across a state set.

    Used by the checker's diagnostics: "allowed are only: ...".
    """
    rets = []
    seen = set()
    for state in states:
        if isinstance(state, SpecialOsState):
            continue
        proc = state.procs.get(pid)
        if proc is not None and isinstance(proc.run, RsReturning):
            if proc.run.ret not in seen:
                seen.add(proc.run.ret)
                rets.append(proc.run.ret)
    return rets
