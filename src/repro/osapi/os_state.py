"""The OS-level model state (the paper's ``ty_os_state``).

An :class:`OsState` bundles the abstract file system with the process
table, the open-file-description table and the group table.  A
:class:`SpecialOsState` represents POSIX undefined / unspecified /
implementation-defined behaviour: once the system may be in a special
state, the model places no further constraints (``finset
os_state_or_special`` in the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.state.heap import FsState, empty_fs
from repro.util.fdict import fdict


@dataclasses.dataclass(frozen=True)
class OsState:
    """OS model state: file system + processes + fids + groups."""

    fs: FsState
    procs: fdict  # pid (int) -> Process
    fids: fdict  # fid (int) -> FidState
    groups: fdict  # gid (int) -> frozenset of uids
    next_fid: int = 1

    def proc(self, pid: int):
        return self.procs[pid]

    def with_proc(self, pid: int, proc) -> "OsState":
        return dataclasses.replace(self, procs=self.procs.set(pid, proc))

    def with_fs(self, fs: FsState) -> "OsState":
        return dataclasses.replace(self, fs=fs)

    def groups_of(self, uid: int) -> frozenset:
        """Supplementary groups: every gid whose member set contains uid."""
        return frozenset(g for g, members in self.groups.items()
                         if uid in members)


@dataclasses.dataclass(frozen=True)
class SpecialOsState:
    """Undefined / unspecified / implementation-defined behaviour marker."""

    kind: str
    detail: str = ""


OsStateOrSpecial = Union[OsState, SpecialOsState]


def initial_os_state(groups: dict | None = None) -> OsState:
    """The start state ``s_0``: an empty file system and no processes.

    ``groups`` optionally pre-populates the group table (gid -> iterable
    of member uids), mirroring the test harness's user/group setup
    (paper section 6.2).
    """
    gtable = fdict({gid: frozenset(members)
                    for gid, members in (groups or {}).items()})
    return OsState(fs=empty_fs(), procs=fdict(), fids=fdict(),
                   groups=gtable)
