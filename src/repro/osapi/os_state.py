"""The OS-level model state (the paper's ``ty_os_state``).

An :class:`OsState` bundles the abstract file system with the process
table, the open-file-description table and the group table.  A
:class:`SpecialOsState` represents POSIX undefined / unspecified /
implementation-defined behaviour: once the system may be in a special
state, the model places no further constraints (``finset
os_state_or_special`` in the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Union

from repro.state.heap import FsState, empty_fs
from repro.util.fdict import fdict


@dataclasses.dataclass(frozen=True)
class OsState:
    """OS model state: file system + processes + fids + groups."""

    fs: FsState
    procs: fdict  # pid (int) -> Process
    fids: fdict  # fid (int) -> FidState
    groups: fdict  # gid (int) -> frozenset of uids
    next_fid: int = 1

    def proc(self, pid: int):
        return self.procs[pid]

    def with_proc(self, pid: int, proc) -> "OsState":
        return dataclasses.replace(self, procs=self.procs.set(pid, proc))

    def with_fs(self, fs: FsState) -> "OsState":
        return dataclasses.replace(self, fs=fs)

    def groups_of(self, uid: int) -> frozenset:
        """Supplementary groups: every gid whose member set contains uid."""
        return frozenset(g for g, members in self.groups.items()
                         if uid in members)


def _os_state_hash(self: "OsState") -> int:
    """Field-tuple hash, computed once per instance.

    States are immutable but re-hashed constantly by state-set
    operations (set membership, interning, snapshot keys); the
    dataclass-generated ``__hash__`` walks the whole nested structure
    on every call.  The cached value lives outside the field set, so
    equality, ``repr`` and ``dataclasses.replace`` are unaffected.
    """
    h = self.__dict__.get("_cached_hash")
    if h is None:
        h = hash((self.fs, self.procs, self.fids, self.groups,
                  self.next_fid))
        object.__setattr__(self, "_cached_hash", h)
    return h


def _os_state_getstate(self: "OsState") -> dict:
    """Drop the cached hash when pickling: hash values are only valid
    within the interpreter that computed them (string hashing is
    per-process)."""
    state = dict(self.__dict__)
    state.pop("_cached_hash", None)
    return state


# Assigned post-definition: @dataclass(frozen=True) installs its own
# __hash__ on the class, which this replaces wholesale.
OsState.__hash__ = _os_state_hash  # type: ignore[assignment]
OsState.__getstate__ = _os_state_getstate  # type: ignore[attr-defined]


@dataclasses.dataclass(frozen=True)
class SpecialOsState:
    """Undefined / unspecified / implementation-defined behaviour marker."""

    kind: str
    detail: str = ""


OsStateOrSpecial = Union[OsState, SpecialOsState]


def initial_os_state(groups: dict | None = None) -> OsState:
    """The start state ``s_0``: an empty file system and no processes.

    ``groups`` optionally pre-populates the group table (gid -> iterable
    of member uids), mirroring the test harness's user/group setup
    (paper section 6.2).
    """
    gtable = fdict({gid: frozenset(members)
                    for gid, members in (groups or {}).items()})
    return OsState(fs=empty_fs(), procs=fdict(), fids=fdict(),
                   groups=gtable)
