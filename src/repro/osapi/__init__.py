"""POSIX API module: the top level of the model (paper Fig. 5).

Defines the labelled transition system: OS states (processes, file
descriptors, open file descriptions, directory handles, users/groups) and
the transition function ``os_trans`` that, given a state and a label,
returns the finite set of successor states.
"""

from repro.osapi.process import (FidState, Process, RsCalling, RsReturning,
                                 RsRunning, RunState)
from repro.osapi.os_state import OsState, SpecialOsState, initial_os_state
from repro.osapi.transition import allowed_returns, os_trans, tau_closure

__all__ = [
    "FidState", "Process", "RsCalling", "RsReturning", "RsRunning",
    "RunState",
    "OsState", "SpecialOsState", "initial_os_state",
    "os_trans", "tau_closure", "allowed_returns",
]
