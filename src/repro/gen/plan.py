"""Composable, lazy test plans over generation strategies.

A :class:`TestPlan` is a *description* of a script population: a tree
of strategies and combinators that generates nothing until the pipeline
pulls from :meth:`TestPlan.scripts`.  Combinators compose lazily —

``union``
    concatenate plans (also ``plan_a | plan_b``);
``filter``
    select by strategy tag and/or script-name glob;
``sample``
    a seeded reservoir sample of *n* scripts (stable generation order);
``scale``
    replicate the population *k* times with renamed copies (the
    section 7.1 throughput filler);
``shuffle``
    a seeded permutation (the only combinator that materialises its
    input);
``take``
    the first *n* scripts (the classic ``limit`` knob)

— so a 5 000-script suite streams straight into the backend chunker
without ever being held as a list.  Every plan renders a provenance
string (:meth:`TestPlan.describe`) and the seeds it used
(:meth:`TestPlan.seeds`), which :class:`repro.api.RunArtifact` records
so a sampled or randomized run is reproducible from its artifact alone.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import random
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.gen.strategy import Strategy
from repro.script.ast import Script


class TestPlan:
    """Base class: a lazy, re-iterable, composable script population."""

    # -- the stream -----------------------------------------------------------

    def scripts(self) -> Iterator[Script]:
        """A fresh iterator over the planned scripts (re-iterable)."""
        raise NotImplementedError

    def estimate(self) -> int:
        """Script count (exact for every built-in plan, but documented
        as an estimate: custom strategies may approximate)."""
        raise NotImplementedError

    def cheap_estimate(self) -> Optional[int]:
        """Like :meth:`estimate`, but ``None`` rather than paying a
        generation pass (name filters must generate to count; progress
        hints should not block on that)."""
        return self.estimate()

    def materialize(self) -> "TestPlan":
        """Generate once and hold the result, keeping this plan's
        provenance — for consumers that iterate the same population
        many times (e.g. a survey over dozens of configurations)."""
        return _MaterializedPlan(self)

    def describe(self) -> str:
        """Provenance string recorded in run artifacts."""
        raise NotImplementedError

    def seeds(self) -> Tuple[int, ...]:
        """Sorted unique seeds used anywhere in the plan tree."""
        return ()

    def __iter__(self) -> Iterator[Script]:
        return self.scripts()

    # -- combinators ----------------------------------------------------------

    def filter(self, include: Optional[Sequence[str]] = None,
               exclude: Optional[Sequence[str]] = None,
               tags: Optional[Iterable[str]] = None) -> "TestPlan":
        """Select by script-name glob and/or strategy tag.

        ``include``/``exclude`` are ``fnmatch`` globs applied lazily to
        every script name; ``tags`` prunes whole strategies before any
        generation happens (a script passes if its strategy shares at
        least one tag).
        """
        plan: TestPlan = self
        if tags:
            restricted = plan._restrict_tags(frozenset(tags))
            plan = restricted if restricted is not None else EMPTY
        if include or exclude:
            plan = _FilterPlan(plan, tuple(include or ()),
                               tuple(exclude or ()))
        return plan

    def sample(self, n: int, seed: int = 0) -> "TestPlan":
        """A seeded reservoir sample of ``n`` scripts, emitted in
        generation order (deterministic for a given seed)."""
        return _SamplePlan(self, n, seed)

    def scale(self, k: int) -> "TestPlan":
        """Replicate the population ``k`` times; copies are renamed
        ``<name>__r<copy>`` exactly as the classic ``generate_suite``
        did, and the source is re-generated per copy (never held)."""
        return self if k <= 1 else _ScalePlan(self, k)

    def shuffle(self, seed: int = 0) -> "TestPlan":
        """A seeded permutation (materialises this plan's output)."""
        return _ShufflePlan(self, seed)

    def take(self, n: int) -> "TestPlan":
        """The first ``n`` scripts."""
        return _TakePlan(self, n)

    def __or__(self, other: "TestPlan") -> "TestPlan":
        return union(self, other)

    # -- structure ------------------------------------------------------------

    def strategies(self) -> Tuple[Strategy, ...]:
        """The leaf strategies this plan draws from."""
        return ()

    def _restrict_tags(self,
                       tags: frozenset) -> Optional["TestPlan"]:
        """The sub-plan drawing only from strategies matching ``tags``
        (``None`` if nothing survives).  Structural: applied before any
        generation."""
        raise ValueError(
            f"{type(self).__name__} is not strategy-backed; tag "
            "filtering requires a plan built from strategies")


class StrategyPlan(TestPlan):
    """A single strategy as a plan (the leaf of every plan tree)."""

    def __init__(self, strategy: Strategy) -> None:
        self.strategy = strategy

    def scripts(self) -> Iterator[Script]:
        return iter(self.strategy.scripts())

    def estimate(self) -> int:
        return self.strategy.estimate()

    def cheap_estimate(self) -> Optional[int]:
        cheap = getattr(self.strategy, "cheap_estimate", None)
        return cheap() if cheap is not None else \
            self.strategy.estimate()

    def describe(self) -> str:
        describe = getattr(self.strategy, "describe", None)
        return describe() if describe else self.strategy.name

    def seeds(self) -> Tuple[int, ...]:
        return tuple(getattr(self.strategy, "seeds", ()))

    def strategies(self) -> Tuple[Strategy, ...]:
        return (self.strategy,)

    def _restrict_tags(self, tags: frozenset) -> Optional[TestPlan]:
        return self if tags & self.strategy.tags else None


class ExplicitPlan(TestPlan):
    """A fixed script sequence as a plan (e.g. a suite already in
    memory, or a parsed script directory)."""

    def __init__(self, scripts: Sequence[Script],
                 label: str = "explicit") -> None:
        self._scripts = tuple(scripts)
        self._label = label

    def scripts(self) -> Iterator[Script]:
        return iter(self._scripts)

    def estimate(self) -> int:
        return len(self._scripts)

    def describe(self) -> str:
        return f"{self._label}[{len(self._scripts)}]"

    def _restrict_tags(self, tags: frozenset) -> Optional[TestPlan]:
        if self is EMPTY:
            return None
        return super()._restrict_tags(tags)


#: The empty plan (what a tag filter that matches nothing collapses to).
EMPTY = ExplicitPlan((), label="empty")


class UnionPlan(TestPlan):
    """Concatenation of sub-plans, in order."""

    def __init__(self, parts: Sequence[TestPlan],
                 label: Optional[str] = None) -> None:
        self.parts = tuple(parts)
        self.label = label

    def scripts(self) -> Iterator[Script]:
        for part in self.parts:
            yield from part.scripts()

    def estimate(self) -> int:
        return sum(part.estimate() for part in self.parts)

    def cheap_estimate(self) -> Optional[int]:
        counts = [part.cheap_estimate() for part in self.parts]
        return None if None in counts else sum(counts)

    def describe(self) -> str:
        if self.label:
            return self.label
        return "union(" + ",".join(p.describe() for p in self.parts) + ")"

    def seeds(self) -> Tuple[int, ...]:
        return _merge_seeds(part.seeds() for part in self.parts)

    def strategies(self) -> Tuple[Strategy, ...]:
        return tuple(s for part in self.parts
                     for s in part.strategies())

    def _restrict_tags(self, tags: frozenset) -> Optional[TestPlan]:
        kept = [p for p in (part._restrict_tags(tags)
                            for part in self.parts) if p is not None]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return UnionPlan(kept)


class _DerivedPlan(TestPlan):
    """Shared plumbing for single-source combinator nodes."""

    def __init__(self, source: TestPlan) -> None:
        self.source = source

    def seeds(self) -> Tuple[int, ...]:
        return self.source.seeds()

    def strategies(self) -> Tuple[Strategy, ...]:
        return self.source.strategies()

    def _rebuild(self, source: TestPlan) -> TestPlan:
        raise NotImplementedError

    def _restrict_tags(self, tags: frozenset) -> Optional[TestPlan]:
        restricted = self.source._restrict_tags(tags)
        return None if restricted is None else self._rebuild(restricted)


class _FilterPlan(_DerivedPlan):
    """Lazy name-glob selection."""

    def __init__(self, source: TestPlan, include: Tuple[str, ...],
                 exclude: Tuple[str, ...]) -> None:
        super().__init__(source)
        self.include = include
        self.exclude = exclude
        self._count: Optional[int] = None

    def _keep(self, name: str) -> bool:
        if self.include and not any(fnmatch.fnmatchcase(name, pat)
                                    for pat in self.include):
            return False
        return not any(fnmatch.fnmatchcase(name, pat)
                       for pat in self.exclude)

    def scripts(self) -> Iterator[Script]:
        return (s for s in self.source.scripts() if self._keep(s.name))

    def estimate(self) -> int:
        if self._count is None:
            self._count = sum(1 for _ in self.scripts())
        return self._count

    def cheap_estimate(self) -> Optional[int]:
        return self._count  # only known once something counted

    def describe(self) -> str:
        args = []
        if self.include:
            args.append("include=" + "|".join(self.include))
        if self.exclude:
            args.append("exclude=" + "|".join(self.exclude))
        return f"{self.source.describe()}.filter({','.join(args)})"

    def _rebuild(self, source: TestPlan) -> TestPlan:
        return _FilterPlan(source, self.include, self.exclude)


class _SamplePlan(_DerivedPlan):
    """Seeded reservoir sample: one pass, O(n) memory, and the chosen
    scripts are emitted in their original generation order so a sampled
    plan is still a deterministic stream."""

    def __init__(self, source: TestPlan, n: int, seed: int) -> None:
        super().__init__(source)
        self.n = n
        self.seed = seed

    def scripts(self) -> Iterator[Script]:
        rng = random.Random(self.seed)
        reservoir: List[Tuple[int, Script]] = []
        for i, script in enumerate(self.source.scripts()):
            if i < self.n:
                reservoir.append((i, script))
            else:
                j = rng.randrange(i + 1)
                if j < self.n:
                    reservoir[j] = (i, script)
        for _, script in sorted(reservoir, key=lambda pair: pair[0]):
            yield script

    def estimate(self) -> int:
        return min(self.n, self.source.estimate())

    def cheap_estimate(self) -> Optional[int]:
        src = self.source.cheap_estimate()
        return self.n if src is None else min(self.n, src)

    def describe(self) -> str:
        return f"{self.source.describe()}.sample({self.n},seed={self.seed})"

    def seeds(self) -> Tuple[int, ...]:
        return _merge_seeds([self.source.seeds(), (self.seed,)])

    def _rebuild(self, source: TestPlan) -> TestPlan:
        return _SamplePlan(source, self.n, self.seed)


class _ScalePlan(_DerivedPlan):
    """k renamed copies, streamed copy by copy."""

    def __init__(self, source: TestPlan, k: int) -> None:
        super().__init__(source)
        self.k = k

    def scripts(self) -> Iterator[Script]:
        for copy in range(self.k):
            for script in self.source.scripts():
                if copy == 0:
                    yield script
                else:
                    yield dataclasses.replace(
                        script, name=f"{script.name}__r{copy}")

    def estimate(self) -> int:
        return self.k * self.source.estimate()

    def cheap_estimate(self) -> Optional[int]:
        src = self.source.cheap_estimate()
        return None if src is None else self.k * src

    def describe(self) -> str:
        return f"{self.source.describe()}.scale({self.k})"

    def _rebuild(self, source: TestPlan) -> TestPlan:
        return _ScalePlan(source, self.k)


class _ShufflePlan(_DerivedPlan):
    """Seeded permutation; the one combinator that materialises."""

    def __init__(self, source: TestPlan, seed: int) -> None:
        super().__init__(source)
        self.seed = seed

    def scripts(self) -> Iterator[Script]:
        scripts = list(self.source.scripts())
        random.Random(self.seed).shuffle(scripts)
        return iter(scripts)

    def estimate(self) -> int:
        return self.source.estimate()

    def cheap_estimate(self) -> Optional[int]:
        return self.source.cheap_estimate()

    def describe(self) -> str:
        return f"{self.source.describe()}.shuffle(seed={self.seed})"

    def seeds(self) -> Tuple[int, ...]:
        return _merge_seeds([self.source.seeds(), (self.seed,)])

    def _rebuild(self, source: TestPlan) -> TestPlan:
        return _ShufflePlan(source, self.seed)


class _TakePlan(_DerivedPlan):
    """The first n scripts (the classic ``limit``)."""

    def __init__(self, source: TestPlan, n: int) -> None:
        super().__init__(source)
        self.n = n

    def scripts(self) -> Iterator[Script]:
        for i, script in enumerate(self.source.scripts()):
            if i >= self.n:
                return
            yield script

    def estimate(self) -> int:
        return min(self.n, self.source.estimate())

    def cheap_estimate(self) -> Optional[int]:
        src = self.source.cheap_estimate()
        return self.n if src is None else min(self.n, src)

    def describe(self) -> str:
        return f"{self.source.describe()}.take({self.n})"

    def _rebuild(self, source: TestPlan) -> TestPlan:
        return _TakePlan(source, self.n)


class _MaterializedPlan(_DerivedPlan):
    """The source plan generated once and held, provenance intact —
    what :meth:`TestPlan.materialize` returns for consumers iterating
    the same population many times (surveys)."""

    def __init__(self, source: TestPlan) -> None:
        super().__init__(source)
        self._scripts = tuple(source.scripts())

    def scripts(self) -> Iterator[Script]:
        return iter(self._scripts)

    def estimate(self) -> int:
        return len(self._scripts)

    def describe(self) -> str:
        return self.source.describe()

    def _rebuild(self, source: TestPlan) -> TestPlan:
        return _MaterializedPlan(source)


def _merge_seeds(seed_groups: Iterable[Tuple[int, ...]]
                 ) -> Tuple[int, ...]:
    merged: set = set()
    for group in seed_groups:
        merged.update(group)
    return tuple(sorted(merged))


def as_plan(value) -> TestPlan:
    """Coerce a plan, a strategy, or a script sequence into a plan."""
    if isinstance(value, TestPlan):
        return value
    if isinstance(value, Strategy):
        return StrategyPlan(value)
    return ExplicitPlan(tuple(value))


def union(*parts, label: Optional[str] = None) -> TestPlan:
    """Concatenate plans and/or strategies into one plan."""
    plans = [as_plan(part) for part in parts]
    if len(plans) == 1 and label is None:
        return plans[0]
    return UnionPlan(plans, label=label)


def explicit(scripts: Sequence[Script],
             label: str = "explicit") -> TestPlan:
    """A fixed, already-materialised suite as a plan."""
    return ExplicitPlan(scripts, label=label)
