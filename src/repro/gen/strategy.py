"""The Strategy protocol: a named, tagged, lazily-generated test family.

The paper's suite (section 6.1) is a union of generator families —
combinatorial path-situation products, hand-designed sequences,
hand-written scripts, randomized scripts.  A :class:`Strategy` is one
such family as *data*: a ``name`` a plan can select by, ``tags`` for
coarse filtering, a cheap ``estimate()`` of how many scripts it yields,
and a re-iterable ``scripts()`` generator.  Strategies never
materialise their population eagerly; :class:`repro.gen.plan.TestPlan`
composes them and the pipeline backends consume them as a stream.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, Optional

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.script.ast import Script
from repro.testgen.randomized import random_script


@runtime_checkable
class Strategy(Protocol):
    """One test-generation family, selectable by name and tags."""

    #: Registry key, e.g. ``"two_path:rename"``.
    name: str
    #: Coarse classification, e.g. ``{"generated", "two-path"}``.
    tags: FrozenSet[str]

    def estimate(self) -> int:
        """The (possibly cached) script count of this strategy."""
        ...

    def scripts(self) -> Iterator[Script]:
        """A fresh iterator over the strategy's scripts.  Must be
        re-iterable: every call restarts the generation.

        A strategy may additionally offer ``describe()`` (provenance
        string, defaults to ``name``) and ``seeds`` (seeds to record in
        the artifact); both are optional.
        """
        ...


class FunctionStrategy:
    """A strategy wrapping one of the classic ``gen_*`` free functions.

    The wrapped callable is invoked afresh on every ``scripts()`` call,
    so the strategy is re-iterable and nothing is cached beyond the
    script count.
    """

    def __init__(self, name: str, fn: Callable[[], Iterable[Script]],
                 tags: Iterable[str] = (),
                 estimate: Optional[int] = None) -> None:
        self.name = name
        self.tags = frozenset(tags)
        self._fn = fn
        self._estimate = estimate

    def estimate(self) -> int:
        if self._estimate is None:
            self._estimate = sum(1 for _ in self.scripts())
        return self._estimate

    def cheap_estimate(self) -> Optional[int]:
        """The declared or already-counted estimate — ``None`` rather
        than generating just to count."""
        return self._estimate

    def scripts(self) -> Iterator[Script]:
        yield from self._fn()

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionStrategy({self.name!r}, tags={sorted(self.tags)})"


class RandomizedStrategy:
    """Seeded random scripts as a strategy (paper sections 8-9).

    ``seed`` is the base seed: script *i* uses ``seed + i``, so the same
    (count, seed, length) triple always regenerates the identical
    population — which is what makes a randomized run reproducible once
    the plan provenance is recorded in the :class:`RunArtifact`.
    """

    name = "randomized"
    tags = frozenset({"randomized"})

    def __init__(self, count: int = 256, seed: int = 0,
                 length: int = 25, multi_process: bool = False) -> None:
        self.count = count
        self.seed = seed
        self.length = length
        self.multi_process = multi_process

    def estimate(self) -> int:
        return self.count

    def scripts(self) -> Iterator[Script]:
        for i in range(self.count):
            yield random_script(self.seed + i, length=self.length,
                                multi_process=self.multi_process)

    def describe(self) -> str:
        return (f"randomized[count={self.count},seed={self.seed},"
                f"length={self.length}]")

    @property
    def seeds(self) -> tuple:
        return (self.seed,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomizedStrategy({self.describe()})"
