"""Composable test-plan API: select -> stream -> check.

The paper's suite (section 6.1) is an equivalence-partitioning union of
generator families.  This package makes each family a first-class,
named, tagged :class:`Strategy` in a :class:`StrategyRegistry`, and
makes populations *plans* — lazy, composable descriptions that stream
scripts straight into the pipeline backends::

    from repro.gen import default_plan

    plan = default_plan().filter(include=["rename*"]) \\
                         .sample(100, seed=7)
    with Session("linux_ext4", plan=plan) as s:
        artifact = s.run()          # generation streams into checking

    # A seeded randomized run, reproducible from its artifact:
    from repro.gen import RandomizedStrategy, union
    plan = union(RandomizedStrategy(count=200, seed=42))

Nothing is materialised: ``plan.scripts()`` is a generator the backend
chunker consumes while it is still producing, and the plan's provenance
(:meth:`TestPlan.describe`) plus every seed it used are recorded in the
:class:`repro.api.RunArtifact`.
"""

from repro.gen.plan import (EMPTY, ExplicitPlan, StrategyPlan, TestPlan,
                            UnionPlan, as_plan, explicit, union)
from repro.gen.registry import (DEFAULT_STRATEGY_NAMES, REGISTRY,
                                StrategyRegistry, build_plan,
                                default_plan, get_strategy, register)
from repro.gen.strategy import (FunctionStrategy, RandomizedStrategy,
                                Strategy)

__all__ = [
    "EMPTY", "ExplicitPlan", "StrategyPlan", "TestPlan", "UnionPlan",
    "as_plan", "explicit", "union",
    "DEFAULT_STRATEGY_NAMES", "REGISTRY", "StrategyRegistry",
    "build_plan", "default_plan", "get_strategy", "register",
    "FunctionStrategy", "RandomizedStrategy", "Strategy",
]
