"""The strategy registry: every generator family, selectable by name.

This is where the classic ``gen_*`` free functions become first-class
strategies (the tmt idiom: tests as data with names and tags that a
plan selects over).  The default registry holds

========================  =============================  ==============
name                      wraps                          tags
========================  =============================  ==============
``one_path``              ``gen_one_path_tests``         generated, combinatorial, one-path
``two_path:rename``       ``gen_two_path_tests`` (full)  generated, combinatorial, two-path
``two_path:link``         ``gen_two_path_tests``         generated, combinatorial, two-path
``two_path:symlink``      ``gen_two_path_tests``         generated, combinatorial, two-path
``open``                  ``gen_open_tests``             generated, combinatorial
``fd``                    ``gen_fd_tests``               generated, sequence
``handle``                ``gen_handle_tests``           generated, sequence
``permission``            ``gen_permission_tests``       generated, multi-process
``handwritten``           ``gen_handwritten_tests``      handwritten
``randomized``            ``random_script`` (seeded)     randomized
========================  =============================  ==============

:func:`default_plan` is the union of every strategy except
``randomized`` in the exact order the deprecated ``generate_suite``
used, so old and new surfaces produce byte-identical suites.
:func:`build_plan` turns CLI-shaped selection options
(``--plan/--include/--exclude/--sample/--seed``) into a plan.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterator, List, Optional, Sequence

from repro.gen.plan import TestPlan, union
from repro.gen.strategy import (FunctionStrategy, RandomizedStrategy,
                                Strategy)
from repro.testgen.generator import (gen_fd_tests, gen_handle_tests,
                                     gen_handwritten_tests,
                                     gen_one_path_tests, gen_open_tests,
                                     gen_permission_tests,
                                     gen_two_path_tests)
from repro.testgen.scenarios import (gen_crash_recovery_tests,
                                     gen_fault_tests,
                                     gen_interleaving_tests)


class StrategyRegistry:
    """Ordered name -> :class:`Strategy` mapping."""

    def __init__(self) -> None:
        self._strategies: Dict[str, Strategy] = {}

    def register(self, strategy: Strategy,
                 replace: bool = False) -> Strategy:
        """Add a strategy; refuses silent clobbering unless asked."""
        if strategy.name in self._strategies and not replace:
            raise ValueError(
                f"strategy {strategy.name!r} is already registered "
                "(pass replace=True to override)")
        self._strategies[strategy.name] = strategy
        return strategy

    def get(self, name: str) -> Strategy:
        try:
            return self._strategies[name]
        except KeyError:
            raise KeyError(
                f"unknown strategy {name!r}; registered: "
                f"{', '.join(self.names())}") from None

    def names(self) -> List[str]:
        return list(self._strategies)

    def matching(self, patterns: Sequence[str]) -> List[Strategy]:
        """Strategies whose name matches any glob, in registry order
        (a pattern matching nothing is an error — a typo, not a wish).
        """
        for pattern in patterns:
            if not any(fnmatch.fnmatchcase(name, pattern)
                       for name in self._strategies):
                raise KeyError(
                    f"no registered strategy matches {pattern!r}; "
                    f"registered: {', '.join(self.names())}")
        return [s for name, s in self._strategies.items()
                if any(fnmatch.fnmatchcase(name, pattern)
                       for pattern in patterns)]

    def plan(self, *patterns: str,
             label: Optional[str] = None) -> TestPlan:
        """A union plan over the strategies matching the name globs."""
        return union(*self.matching(patterns or ("*",)), label=label)

    def __iter__(self) -> Iterator[Strategy]:
        return iter(self._strategies.values())

    def __contains__(self, name: str) -> bool:
        return name in self._strategies

    def __len__(self) -> int:
        return len(self._strategies)


#: The process-wide default registry (import-time populated below).
REGISTRY = StrategyRegistry()


def register(strategy: Strategy, replace: bool = False) -> Strategy:
    """Register a strategy with the default registry."""
    return REGISTRY.register(strategy, replace=replace)


def get_strategy(name: str) -> Strategy:
    """Look a strategy up in the default registry."""
    return REGISTRY.get(name)


#: Default-plan members, in the classic ``generate_suite`` order.
DEFAULT_STRATEGY_NAMES = (
    "one_path", "two_path:rename", "two_path:link", "two_path:symlink",
    "open", "fd", "handle", "permission", "handwritten",
)

# Estimates are declared so listing plans and seeding progress totals
# never generate just to count; each is asserted exact against the
# real population by the test suite.
register(FunctionStrategy(
    "one_path", gen_one_path_tests,
    tags=("generated", "combinatorial", "one-path"), estimate=1280))
register(FunctionStrategy(
    "two_path:rename", lambda: gen_two_path_tests("rename", full=True),
    tags=("generated", "combinatorial", "two-path"), estimate=2564))
register(FunctionStrategy(
    "two_path:link", lambda: gen_two_path_tests("link"),
    tags=("generated", "combinatorial", "two-path"), estimate=332))
register(FunctionStrategy(
    "two_path:symlink", lambda: gen_two_path_tests("symlink"),
    tags=("generated", "combinatorial", "two-path"), estimate=332))
register(FunctionStrategy(
    "open", gen_open_tests, tags=("generated", "combinatorial"),
    estimate=486))
register(FunctionStrategy(
    "fd", gen_fd_tests, tags=("generated", "sequence"), estimate=36))
register(FunctionStrategy(
    "handle", gen_handle_tests, tags=("generated", "sequence"),
    estimate=15))
register(FunctionStrategy(
    "permission", gen_permission_tests,
    tags=("generated", "multi-process"), estimate=72))
register(FunctionStrategy(
    "handwritten", gen_handwritten_tests, tags=("handwritten",),
    estimate=24))
# The scenario families (fault injection, crash/recovery prefixes,
# multi-process interleavings) are selectable seeds for the fuzzer and
# for explicit --plan runs; like `randomized` they stay out of the
# default plan so the classic suite remains byte-identical.
register(FunctionStrategy(
    "fault", gen_fault_tests,
    tags=("generated", "scenario", "fault"), estimate=14))
register(FunctionStrategy(
    "crash_recovery", gen_crash_recovery_tests,
    tags=("generated", "scenario", "crash-recovery", "multi-process"),
    estimate=9))
register(FunctionStrategy(
    "interleaving", gen_interleaving_tests,
    tags=("generated", "scenario", "interleaving", "multi-process"),
    estimate=7))
register(RandomizedStrategy())


def default_plan(scale: int = 1) -> TestPlan:
    """The paper's full suite as a plan: every registered strategy
    except ``randomized``, in the classic ``generate_suite`` order."""
    plan = union(*(REGISTRY.get(name)
                   for name in DEFAULT_STRATEGY_NAMES),
                 label="default")
    return plan.scale(scale)


def build_plan(names: Optional[Sequence[str]] = None,
               include: Optional[Sequence[str]] = None,
               exclude: Optional[Sequence[str]] = None,
               sample: Optional[int] = None,
               seed: int = 0,
               scale: int = 1,
               limit: int = 0) -> TestPlan:
    """A plan from CLI-shaped selection options.

    ``names`` are strategy name globs (default: the default plan); the
    ``randomized`` strategy, when selected, is re-seeded with ``seed``
    so one flag controls both the sample *and* the random content.
    Combinators apply in the order scale -> filter -> sample -> take.
    """
    if names:
        strategies: List[Strategy] = [
            RandomizedStrategy(seed=seed)
            if s.name == "randomized" else s
            for s in REGISTRY.matching(list(names))]
        plan = union(*strategies)
    else:
        plan = default_plan()
    plan = plan.scale(scale)
    if include or exclude:
        plan = plan.filter(include=include, exclude=exclude)
    if sample:
        plan = plan.sample(sample, seed=seed)
    if limit:
        plan = plan.take(limit)
    return plan
