"""The determinized model as a reference file system (paper section 8).

The paper notes that SibylFS can be used as a reference implementation
"by determinizing the model (selecting one of the many possible states at
each step)" — previous versions were even mounted as FUSE file systems.
:class:`ReferenceFS` packages that idea as a friendly in-memory POSIX
file system: each method performs one libc call against a quirk-free
:class:`~repro.fsimpl.kernel.KernelFS` and either returns the value or
raises :class:`FsError`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import commands as C
from repro.core.errors import Errno
from repro.core.flags import OpenFlag, SeekWhence
from repro.core.values import (Err, Ok, ReturnValue, RvBytes, RvDirEntry,
                               RvNum, RvStat, Stat)
from repro.fsimpl.kernel import KernelFS
from repro.fsimpl.quirks import Quirks


class FsError(OSError):
    """A failed file-system call, carrying the model's errno."""

    def __init__(self, errno: Errno, call: str):
        self.fs_errno = errno
        self.call = call
        super().__init__(f"{call}: {errno.value}")


class ReferenceFS:
    """An in-memory POSIX file system backed by the determinized model.

    Example::

        fs = ReferenceFS()
        fs.mkdir("/a")
        fd = fs.open("/a/f", OpenFlag.O_CREAT | OpenFlag.O_WRONLY)
        fs.write(fd, b"hello")
        fs.close(fd)
        assert fs.stat("/a/f").size == 5
    """

    def __init__(self, platform: str = "posix", uid: int = 0,
                 gid: int = 0):
        self._kernel = KernelFS(Quirks(
            name=f"reference-{platform}", platform=platform,
            chroot_root_nlink_off_by_one=False))
        self._pid = 1
        self._kernel.create_process(self._pid, uid, gid)

    # -- plumbing ---------------------------------------------------------------
    def _call(self, cmd: C.OsCommand) -> ReturnValue:
        ret = self._kernel.call(self._pid, cmd)
        if isinstance(ret, Err):
            raise FsError(ret.errno, cmd.render())
        return ret

    # -- directory and name operations -----------------------------------------
    def mkdir(self, path: str, mode: int = 0o777) -> None:
        self._call(C.Mkdir(path, mode))

    def rmdir(self, path: str) -> None:
        self._call(C.Rmdir(path))

    def unlink(self, path: str) -> None:
        self._call(C.Unlink(path))

    def link(self, src: str, dst: str) -> None:
        self._call(C.Link(src, dst))

    def rename(self, src: str, dst: str) -> None:
        self._call(C.Rename(src, dst))

    def symlink(self, target: str, linkpath: str) -> None:
        self._call(C.Symlink(target, linkpath))

    def readlink(self, path: str) -> str:
        ret = self._call(C.Readlink(path))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvBytes)
        return ret.value.data.decode("utf-8")

    def chdir(self, path: str) -> None:
        self._call(C.Chdir(path))

    def chmod(self, path: str, mode: int) -> None:
        self._call(C.Chmod(path, mode))

    def chown(self, path: str, uid: int, gid: int) -> None:
        self._call(C.Chown(path, uid, gid))

    def umask(self, mask: int) -> int:
        ret = self._call(C.Umask(mask))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvNum)
        return ret.value.value

    def truncate(self, path: str, length: int) -> None:
        self._call(C.Truncate(path, length))

    # -- stat --------------------------------------------------------------------
    def stat(self, path: str) -> Stat:
        ret = self._call(C.StatCmd(path))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvStat)
        return ret.value.stat

    def lstat(self, path: str) -> Stat:
        ret = self._call(C.LstatCmd(path))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvStat)
        return ret.value.stat

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except FsError:
            return False

    # -- file descriptors --------------------------------------------------------
    def open(self, path: str, flags: OpenFlag = OpenFlag.O_RDONLY,
             mode: int = 0o666) -> int:
        ret = self._call(C.Open(path, flags, mode))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvNum)
        return ret.value.value

    def close(self, fd: int) -> None:
        self._call(C.Close(fd))

    def read(self, fd: int, count: int) -> bytes:
        ret = self._call(C.Read(fd, count))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvBytes)
        return ret.value.data

    def write(self, fd: int, data: bytes) -> int:
        ret = self._call(C.Write(fd, data))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvNum)
        return ret.value.value

    def pread(self, fd: int, count: int, offset: int) -> bytes:
        ret = self._call(C.Pread(fd, count, offset))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvBytes)
        return ret.value.data

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        ret = self._call(C.Pwrite(fd, data, offset))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvNum)
        return ret.value.value

    def lseek(self, fd: int, offset: int,
              whence: SeekWhence = SeekWhence.SEEK_SET) -> int:
        ret = self._call(C.Lseek(fd, offset, whence))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvNum)
        return ret.value.value

    # -- directory handles ---------------------------------------------------------
    def opendir(self, path: str) -> int:
        ret = self._call(C.Opendir(path))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvNum)
        return ret.value.value

    def readdir(self, dh: int) -> Optional[str]:
        """One entry name, or None at end of directory."""
        ret = self._call(C.Readdir(dh))
        assert isinstance(ret, Ok) and isinstance(ret.value, RvDirEntry)
        return ret.value.name

    def rewinddir(self, dh: int) -> None:
        self._call(C.Rewinddir(dh))

    def closedir(self, dh: int) -> None:
        self._call(C.Closedir(dh))

    def listdir(self, path: str) -> List[str]:
        """All entries of a directory, in readdir order."""
        dh = self.opendir(path)
        entries: List[str] = []
        while True:
            name = self.readdir(dh)
            if name is None:
                break
            entries.append(name)
        self.closedir(dh)
        return entries

    # -- convenience -----------------------------------------------------------
    def write_file(self, path: str, data: bytes,
                   mode: int = 0o666) -> None:
        """Create/replace a file with the given contents."""
        fd = self.open(path, OpenFlag.O_CREAT | OpenFlag.O_WRONLY
                       | OpenFlag.O_TRUNC, mode)
        self.write(fd, data)
        self.close(fd)

    def read_file(self, path: str) -> bytes:
        """Read a whole file."""
        fd = self.open(path, OpenFlag.O_RDONLY)
        out = b""
        while True:
            chunk = self.read(fd, 65536)
            if not chunk:
                break
            out += chunk
        self.close(fd)
        return out
