"""The simulated implementation-under-test.

:class:`KernelFS` is a deterministic file-system implementation exposing
the modelled libc surface.  Internally it *determinizes the model* — the
technique the paper itself describes for using SibylFS as a reference
implementation (section 8) — and then layers the quirk table on top:
pre-hooks divert calls that a real defective system would mishandle
(spin, signal, wrong errno), and post-hooks corrupt results or state the
way the documented defects do (missing link counts, leaked storage,
clobbered symlinks).

Determinization policy (how one outcome is picked from the model's
allowed set):

* success is preferred over failure (a real system succeeds when it can);
* full-length reads and writes are performed;
* ``readdir`` yields entries in lexicographic order;
* among allowed errors, the configuration's ``error_priority`` decides
  (real implementations fix an error by their internal check order).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

from repro.core import commands as C
from repro.core.errors import Errno
from repro.core.flags import FileKind, OpenFlag
from repro.core.platform import PlatformSpec, spec_by_name, \
    without_permissions
from repro.core.values import (Err, Ok, ReturnValue, RvDirEntry, RvNum,
                               RvStat)
from repro.fsimpl.quirks import Quirks, UmaskPolicy
from repro.osapi.os_state import OsState, SpecialOsState, initial_os_state
from repro.osapi.process import RsCalling, RsRunning
from repro.osapi.transition import exec_call
from repro.pathres.resname import Follow, RnFile
from repro.pathres.resolve import PermEnv, resolve
from repro.state.heap import DirRef, FileRef


class SignalKill(Exception):
    """The system under test killed the calling process with a signal."""

    def __init__(self, signal: str):
        self.signal = signal
        super().__init__(signal)


class SpinHang(Exception):
    """The calling process entered an unkillable busy loop (Fig. 8)."""


class KernelFS:
    """One simulated OS/file-system configuration under test."""

    def __init__(self, quirks: Quirks):
        self.quirks = quirks
        base = spec_by_name(quirks.platform)
        if not quirks.enforce_permissions:
            base = without_permissions(base)
        self.spec: PlatformSpec = base
        self.state: OsState = initial_os_state()
        #: Bytes permanently lost to the posixovl rename leak (§7.3.5).
        self.leaked_bytes: int = 0
        self._dead: set[int] = set()

    # -- process management ----------------------------------------------------
    def create_process(self, pid: int, uid: int, gid: int) -> None:
        from repro.core.labels import OsCreate
        from repro.osapi.transition import os_trans
        states = os_trans(self.spec, self.state, OsCreate(pid, uid, gid))
        if not states:
            raise ValueError(f"cannot create process {pid}")
        (self.state,) = states

    def destroy_process(self, pid: int) -> None:
        from repro.core.labels import OsDestroy
        from repro.osapi.transition import os_trans
        states = os_trans(self.spec, self.state, OsDestroy(pid))
        if states:
            (self.state,) = states
        self._dead.discard(pid)

    def process_alive(self, pid: int) -> bool:
        return pid in self.state.procs and pid not in self._dead

    # -- the call interface -----------------------------------------------------
    def call(self, pid: int, cmd: C.OsCommand) -> ReturnValue:
        """Execute one libc call, returning its value or error.

        Raises :class:`SignalKill` / :class:`SpinHang` for the
        process-level defects of sections 7.3.4-7.3.5.
        """
        if pid in self._dead:
            raise ValueError(f"process {pid} was killed")
        quirk_ret = self._pre_hook(pid, cmd)
        if quirk_ret is not None:
            return quirk_ret
        ret, new_state = self._execute(pid, cmd)
        new_state = self._post_hook(pid, cmd, ret, new_state)
        self.state = new_state
        return self._result_hook(pid, cmd, ret)

    # -- determinized model execution ----------------------------------------
    def _execute(self, pid: int,
                 cmd: C.OsCommand) -> tuple[ReturnValue, OsState]:
        proc = self.state.proc(pid)
        cmd = self._transform_cmd(pid, cmd)
        # The umask mount-option quirks only affect object creation; the
        # effective mask is staged for the call and restored afterwards
        # so that the process's own umask value is preserved.
        creation = isinstance(cmd, (C.Open, C.Mkdir, C.Symlink))
        eff_umask = self._effective_umask(proc.umask) if creation \
            else proc.umask
        proc2 = dataclasses.replace(proc, umask=eff_umask,
                                    run=RsCalling(cmd))
        staged = self.state.with_proc(pid, proc2)
        outcomes = exec_call(self.spec, staged, pid)
        chosen = self._choose(pid, cmd, outcomes)
        if isinstance(chosen, SpecialOsState):
            # Undefined behaviour: the simulated kernel does the
            # Linux-like thing for the one special case in scope
            # (open O_CREAT|O_DIRECTORY creates a regular file).
            return self._do_special(pid, cmd)
        out_proc = chosen.proc(pid)
        ret = out_proc.run.ret  # type: ignore[union-attr]
        restored_umask = proc.umask if creation else out_proc.umask
        committed = chosen.with_proc(pid, dataclasses.replace(
            out_proc, umask=restored_umask, run=RsRunning()))
        return ret, committed

    def _transform_cmd(self, pid: int, cmd: C.OsCommand) -> C.OsCommand:
        # OpenZFS 0.6.3 (§7.3.4): O_APPEND does not seek to EOF before
        # write/pwrite.  Simulated by stripping O_APPEND from the open
        # flags of the file description for the duration of the call.
        if self.quirks.o_append_no_seek and isinstance(
                cmd, (C.Write, C.Pwrite)):
            proc = self.state.proc(pid)
            fid = proc.fds.get(cmd.fd)
            if fid is not None:
                fid_state = self.state.fids[fid]
                if fid_state.flags & OpenFlag.O_APPEND:
                    new_fid = dataclasses.replace(
                        fid_state,
                        flags=fid_state.flags & ~OpenFlag.O_APPEND)
                    self.state = dataclasses.replace(
                        self.state,
                        fids=self.state.fids.set(fid, new_fid))
        return cmd

    def _effective_umask(self, umask: int) -> int:
        policy = self.quirks.umask_policy
        if policy is UmaskPolicy.OR_0022:
            return umask | 0o022
        if policy is UmaskPolicy.IGNORE:
            return 0o000
        return umask

    def _choose(self, pid: int, cmd: C.OsCommand, outcomes):
        """Pick the deterministic real-system behaviour from the model's
        allowed set."""
        oks = []
        errs = []
        specials = []
        for out in outcomes:
            if isinstance(out, SpecialOsState):
                specials.append(out)
            else:
                ret = out.proc(pid).run.ret
                (oks if isinstance(ret, Ok) else errs).append((ret, out))
        if oks:
            return self._choose_ok(cmd, oks)
        if errs:
            priority = {e: i for i, e in
                        enumerate(self.quirks.error_priority)}
            errs.sort(key=lambda pair: (
                priority.get(pair[0].errno, len(priority)),
                pair[0].errno.value))
            return errs[0][1]
        assert specials
        return specials[0]

    def _choose_ok(self, cmd: C.OsCommand, oks):
        if isinstance(cmd, (C.Read, C.Pread)):
            # Full-length read.
            return max(oks, key=lambda pair: len(pair[0].value.data))[1]
        if isinstance(cmd, (C.Write, C.Pwrite)):
            # Full-length write.
            return max(oks, key=lambda pair: pair[0].value.value)[1]
        if isinstance(cmd, C.Readdir):
            # Lexicographically first owed entry; end only when drained.
            entries = [(ret.value.name, out) for ret, out in oks
                       if isinstance(ret.value, RvDirEntry)
                       and ret.value.name is not None]
            if entries:
                return min(entries, key=lambda pair: pair[0])[1]
            return oks[0][1]
        if isinstance(cmd, C.Open) and len(oks) > 1:
            # O_RDONLY|O_TRUNC looseness: Linux truncates; pick the
            # outcome whose file is empty.
            def truncated(pair):
                _ret, out = pair
                return sum(len(f.content) for f in out.fs.files.values())
            return min(oks, key=truncated)[1]
        return oks[0][1]

    def _do_special(self, pid: int,
                    cmd: C.OsCommand) -> tuple[ReturnValue, OsState]:
        # The only special case the simulated kernels hit: Linux's
        # O_CREAT|O_DIRECTORY wart — create the regular file anyway.
        assert isinstance(cmd, C.Open)
        stripped = C.Open(cmd.path, cmd.flags & ~OpenFlag.O_DIRECTORY,
                          cmd.mode)
        return self._execute(pid, stripped)

    # -- quirk pre-hooks ------------------------------------------------------
    def _pre_hook(self, pid: int,
                  cmd: C.OsCommand) -> Optional[ReturnValue]:
        quirks = self.quirks
        proc = self.state.proc(pid)

        if quirks.spin_on_create_in_disconnected_cwd and \
                isinstance(cmd, C.Open) and cmd.flags & OpenFlag.O_CREAT:
            cwd_dir = self.state.fs.dir(proc.cwd)
            if cwd_dir.parent is None and proc.cwd != self.state.fs.root:
                # Fig. 8: the calling process spins at 100% CPU and
                # ignores all signals.
                self._dead.add(pid)
                raise SpinHang()

        if quirks.pwrite_negative_signal and isinstance(cmd, C.Pwrite) \
                and cmd.offset < 0:
            # OS X VFS unsigned-offset underflow (§7.3.4): the process
            # is killed by SIGXFSZ instead of receiving EINVAL.
            self._dead.add(pid)
            raise SignalKill(quirks.pwrite_negative_signal)

        if quirks.chmod_errno is not None and isinstance(cmd, C.Chmod):
            return Err(quirks.chmod_errno)

        if isinstance(cmd, C.Write) and len(cmd.data) == 0 and \
                cmd.fd not in proc.fds:
            # Implementation-defined zero-byte write to a bad descriptor:
            # the libc decides (§7.2 acceptable variation).
            if quirks.write_zero_bad_fd_succeeds:
                return Ok(RvNum(0))
            return Err(Errno.EBADF)

        if quirks.link_symlink_eperm and isinstance(cmd, C.Link):
            env = PermEnv(uid=proc.uid, gid=proc.gid, groups=proc.groups,
                          enabled=False)
            rn = resolve(self.spec, self.state.fs, proc.cwd, cmd.src,
                         Follow.NOFOLLOW, env)
            if isinstance(rn, RnFile) and \
                    self.state.fs.file(rn.fref).kind is FileKind.SYMLINK:
                return Err(Errno.EPERM)

        if quirks.rename_nonempty_eperm and isinstance(cmd, C.Rename):
            env = PermEnv(enabled=False)
            src = resolve(self.spec, self.state.fs, proc.cwd, cmd.src,
                          Follow.NOFOLLOW, env)
            dst = resolve(self.spec, self.state.fs, proc.cwd, cmd.dst,
                          Follow.NOFOLLOW, env)
            from repro.pathres.resname import RnDir
            if isinstance(src, RnDir) and isinstance(dst, RnDir) and \
                    not self.state.fs.is_empty_dir(dst.dref):
                # The SSHFS deviation checked in paper Fig. 4.
                return Err(Errno.EPERM)

        if quirks.excl_dir_symlink_clobber and isinstance(cmd, C.Open) \
                and cmd.flags & OpenFlag.O_CREAT \
                and cmd.flags & OpenFlag.O_EXCL \
                and cmd.flags & OpenFlag.O_DIRECTORY:
            env = PermEnv(enabled=False)
            rn = resolve(self.spec, self.state.fs, proc.cwd, cmd.path,
                         Follow.NOFOLLOW, env)
            if isinstance(rn, RnFile) and \
                    self.state.fs.file(rn.fref).kind is FileKind.SYMLINK:
                # FreeBSD (§7.3.2): returns ENOTDIR *and* replaces the
                # symlink with a fresh regular file — breaking the POSIX
                # invariant that failing calls leave the state unchanged.
                fs = self.state.fs.remove_entry(rn.parent, rn.name)
                from repro.fsops.common import FsEnv
                fenv = FsEnv(spec=self.spec,
                             perm=PermEnv(uid=proc.uid, gid=proc.gid,
                                          groups=proc.groups,
                                          enabled=False),
                             umask=proc.umask)
                fs, _ = fs.create_file(rn.parent, rn.name,
                                       fenv.new_meta(cmd.mode))
                self.state = self.state.with_fs(fs)
                return Err(Errno.ENOTDIR)

        if quirks.capacity_bytes is not None:
            err = self._check_capacity(pid, cmd)
            if err is not None:
                return err
        return None

    # -- storage accounting (posixovl leak, §7.3.5) ----------------------------
    def used_bytes(self) -> int:
        live = sum(len(f.content)
                   for f in self.state.fs.files.values() if f.nlink > 0)
        return live + self.leaked_bytes

    def _check_capacity(self, pid: int,
                        cmd: C.OsCommand) -> Optional[ReturnValue]:
        cap = self.quirks.capacity_bytes
        assert cap is not None
        delta = 0
        if isinstance(cmd, (C.Write, C.Pwrite)):
            delta = len(cmd.data)
        elif isinstance(cmd, C.Truncate):
            delta = max(0, cmd.length)
        if delta and self.used_bytes() + delta > cap:
            return Err(Errno.ENOSPC)
        if isinstance(cmd, C.Open) and cmd.flags & OpenFlag.O_CREAT and \
                self.used_bytes() >= cap:
            # The paper observed open(O_CREAT) failing once the leaked
            # volume filled (ENOENT on Linux 3.19; we report ENOSPC).
            return Err(Errno.ENOSPC)
        return None

    # -- quirk post-hooks --------------------------------------------------------
    def _post_hook(self, pid: int, cmd: C.OsCommand, ret: ReturnValue,
                   new_state: OsState) -> OsState:
        quirks = self.quirks
        if quirks.rename_link_count_leak and isinstance(cmd, C.Rename) \
                and isinstance(ret, Ok):
            # Find a file object whose link count dropped to zero in this
            # rename (the displaced destination) and "forget" to
            # decrement it: the object stays allocated forever.
            for fref, fobj in new_state.fs.files.items():
                old = self.state.fs.files.get(fref)
                if old is not None and old.nlink > 0 and fobj.nlink == 0:
                    self.leaked_bytes += len(fobj.content)
        if quirks.forced_owner is not None and isinstance(ret, Ok):
            new_state = self._force_ownership(pid, cmd, new_state)
        return new_state

    def _force_ownership(self, pid: int, cmd: C.OsCommand,
                         new_state: OsState) -> OsState:
        # SSHFS (§7.3.4): creation ownership is unconfigurably the mount
        # owner, regardless of the calling process.
        uid, gid = self.quirks.forced_owner
        created_path = None
        if isinstance(cmd, C.Mkdir):
            created_path = cmd.path
        elif isinstance(cmd, C.Symlink):
            created_path = cmd.linkpath
        elif isinstance(cmd, C.Open) and cmd.flags & OpenFlag.O_CREAT:
            created_path = cmd.path
        if created_path is None:
            return new_state
        proc = new_state.proc(pid)
        env = PermEnv(enabled=False)
        rn = resolve(self.spec, new_state.fs, proc.cwd, created_path,
                     Follow.NOFOLLOW, env)
        fs = new_state.fs
        from repro.pathres.resname import RnDir
        if isinstance(rn, RnFile):
            meta = fs.file(rn.fref).meta.with_owner(uid, gid)
            fs = fs.set_file_meta(rn.fref, meta)
        elif isinstance(rn, RnDir):
            meta = fs.dir(rn.dref).meta.with_owner(uid, gid)
            fs = fs.set_dir_meta(rn.dref, meta)
        return new_state.with_fs(fs)

    # -- quirk result rewriting ----------------------------------------------
    def _result_hook(self, pid: int, cmd: C.OsCommand,
                     ret: ReturnValue) -> ReturnValue:
        quirks = self.quirks
        if isinstance(ret, Ok) and isinstance(ret.value, RvStat):
            stat = ret.value.stat
            if stat.kind is FileKind.DIRECTORY:
                if quirks.dir_nlink_constant is not None:
                    stat = dataclasses.replace(
                        stat, nlink=quirks.dir_nlink_constant)
                elif quirks.chroot_root_nlink_off_by_one and \
                        self._is_root_stat(pid, cmd):
                    # The chroot-jail artefact behind most of the paper's
                    # 9 standard-Linux trace failures (§7.2).
                    stat = dataclasses.replace(stat,
                                               nlink=stat.nlink + 1)
            else:
                if quirks.file_nlink_constant is not None:
                    stat = dataclasses.replace(
                        stat, nlink=quirks.file_nlink_constant)
            return Ok(RvStat(stat))
        return ret

    def _is_root_stat(self, pid: int, cmd: C.OsCommand) -> bool:
        if not isinstance(cmd, (C.StatCmd, C.LstatCmd)):
            return False
        proc = self.state.proc(pid)
        env = PermEnv(enabled=False)
        rn = resolve(self.spec, self.state.fs, proc.cwd, cmd.path,
                     Follow.FOLLOW, env)
        from repro.pathres.resname import RnDir
        return isinstance(rn, RnDir) and rn.dref == self.state.fs.root
