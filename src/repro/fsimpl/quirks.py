"""Quirk tables: what makes one tested configuration behave differently.

Each switch corresponds to a behaviour or defect documented in the paper
(section references inline).  A configuration with all defaults behaves
like "standard Linux with ext4" and should check cleanly against the
Linux model variant.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

from repro.core.errors import Errno


class UmaskPolicy(enum.Enum):
    """How the implementation treats the caller's file-creation mask.

    SSHFS (section 7.3.4): without a ``umask`` mount option the user
    process's umask is bitwise ORed with 0022; with ``umask=0000`` the
    process umask is ignored entirely.
    """

    NORMAL = "normal"
    OR_0022 = "or_0022"
    IGNORE = "ignore"


@dataclasses.dataclass(frozen=True)
class Quirks:
    """Behaviour switches of one simulated configuration."""

    name: str
    #: The model variant this configuration is *expected* to satisfy.
    platform: str = "linux"
    description: str = ""

    #: Error-priority order used to determinize the model's loose error
    #: envelopes (real implementations fix an order by their check
    #: sequence).  Errors missing from the list rank last, alphabetically.
    error_priority: Tuple[Errno, ...] = (
        Errno.ENOENT, Errno.EEXIST, Errno.EBUSY, Errno.EISDIR,
        Errno.ENOTEMPTY, Errno.ENOTDIR, Errno.EINVAL, Errno.EACCES,
        Errno.EPERM, Errno.ELOOP, Errno.ENAMETOOLONG,
    )

    # -- §7.2: chroot-jail testing artefact ---------------------------------
    #: The paper's 9 standard-Linux failures are mostly artefacts of the
    #: chroot jail (root link count off by one).  True for kernel-backed
    #: configurations to reproduce that acceptance shape.
    chroot_root_nlink_off_by_one: bool = False

    # -- §7.3.2: core-behaviour violations -----------------------------------
    #: Btrfs / Linux-HFS+ do not maintain directory link counts (st_nlink
    #: is a constant 1); SSHFS additionally loses regular-file counts.
    dir_nlink_constant: Optional[int] = None
    file_nlink_constant: Optional[int] = None
    #: Linux-HFS+ returns EPERM for link() on a symlink (a portability
    #: compromise for removable volumes).
    link_symlink_eperm: bool = False
    #: FreeBSD: open O_CREAT|O_DIRECTORY|O_EXCL on a symlink to a
    #: directory returns ENOTDIR *and clobbers the symlink with a new
    #: regular file*, violating the POSIX error invariant.
    excl_dir_symlink_clobber: bool = False

    # -- §7.3.4: defects likely to cause application failure -----------------
    #: SSHFS deviation observed in paper Fig. 4: renaming an empty
    #: directory onto a non-empty one returns EPERM.
    rename_nonempty_eperm: bool = False
    #: SSHFS mount options: enforce permission checks at all?
    #: (allow_other without default_permissions does not.)
    enforce_permissions: bool = True
    #: SSHFS: creation ownership forced to the mount owner (root).
    forced_owner: Optional[Tuple[int, int]] = None
    umask_policy: UmaskPolicy = UmaskPolicy.NORMAL
    #: OS X VFS: pwrite with negative offset underflows to a huge
    #: unsigned value and the process is killed with SIGXFSZ.
    pwrite_negative_signal: Optional[str] = None
    #: Ubuntu-Trusty Linux-HFS+: every chmod returns EOPNOTSUPP.
    chmod_errno: Optional[Errno] = None
    #: OpenZFS 0.6.3: O_APPEND does not seek to end-of-file before
    #: write/pwrite (data loss / corruption).
    o_append_no_seek: bool = False

    # -- §7.3.5: system halt / data loss / resource exhaustion ---------------
    #: posixovl/VFAT: rename over an existing file fails to decrement the
    #: displaced file's link count, permanently leaking its storage.
    rename_link_count_leak: bool = False
    #: Volume capacity in bytes (None = unbounded); needed to observe the
    #: posixovl storage leak as ENOSPC.
    capacity_bytes: Optional[int] = None
    #: OpenZFS on OS X (Fig. 8): open O_CREAT while the working directory
    #: is disconnected sends the process into an unkillable busy loop.
    spin_on_create_in_disconnected_cwd: bool = False

    # -- libc-level variation (§7, glibc vs musl) -----------------------------
    #: Whether writing zero bytes to a bad file descriptor reports
    #: success (0) instead of EBADF — implementation-defined, and one of
    #: the acceptable §7.2 variations between libcs.
    write_zero_bad_fd_succeeds: bool = False
