"""Simulated real-world file systems under test.

The paper tests ~40 OS/file-system configurations via libc.  This
environment has no kernels to test, so (per the substitution documented
in DESIGN.md) each configuration is an in-process :class:`KernelFS`: a
deterministic implementation of the same call surface, parameterised by a
:class:`Quirks` table that injects the documented behavioural differences
and defects of paper section 7.3.  The oracle pipeline is unchanged —
scripts are executed against a KernelFS, traces are recorded, and the
checker re-discovers every injected defect.
"""

from repro.fsimpl.quirks import Quirks
from repro.fsimpl.kernel import KernelFS, SignalKill, SpinHang
from repro.fsimpl.configs import (ALL_CONFIGS, config_by_name,
                                  configs_for_platform)
from repro.fsimpl.modelfs import ReferenceFS

__all__ = ["Quirks", "KernelFS", "SignalKill", "SpinHang", "ALL_CONFIGS",
           "config_by_name", "configs_for_platform", "ReferenceFS"]
