"""The tested configurations (paper section 7: "over 40 system
configurations").

Each entry names one OS/file-system/libc combination from the paper's
survey, with the quirk profile that reproduces its documented behaviour.
Configurations with default quirks behave like standard Linux ext*;
the interesting entries carry the deviations of sections 7.3.2-7.3.5.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.errors import Errno
from repro.fsimpl.quirks import Quirks, UmaskPolicy

_STANDARD_LINUX = dict(
    platform="linux",
    chroot_root_nlink_off_by_one=True,
)

#: OS X's VFS-level pwrite underflow (§7.3.4) affects every file system
#: mounted on OS X, so it is part of the OS X baseline.
_STANDARD_OSX = dict(
    platform="osx",
    chroot_root_nlink_off_by_one=True,
    pwrite_negative_signal="SIGXFSZ",
)

_STANDARD_FREEBSD = dict(
    platform="freebsd",
    chroot_root_nlink_off_by_one=True,
    excl_dir_symlink_clobber=True,
)


def _linux(name: str, description: str, **kw) -> Quirks:
    merged = dict(_STANDARD_LINUX)
    merged.update(kw)
    return Quirks(name=name, description=description, **merged)


def _osx(name: str, description: str, **kw) -> Quirks:
    merged = dict(_STANDARD_OSX)
    merged.update(kw)
    return Quirks(name=name, description=description, **merged)


def _freebsd(name: str, description: str, **kw) -> Quirks:
    merged = dict(_STANDARD_FREEBSD)
    merged.update(kw)
    return Quirks(name=name, description=description, **merged)


_SSHFS_BASE = dict(
    dir_nlink_constant=1,
    file_nlink_constant=1,
    rename_nonempty_eperm=True,
    forced_owner=(0, 0),
)

ALL_CONFIGS: List[Quirks] = [
    # ---- Linux, kernel 3.19, glibc (the "standard" platforms of §7.2) ----
    _linux("linux_tmpfs", "Linux 3.19 tmpfs, glibc"),
    _linux("linux_ext2", "Linux 3.19 ext2, glibc"),
    _linux("linux_ext3", "Linux 3.19 ext3, glibc"),
    _linux("linux_ext4", "Linux 3.19 ext4, glibc"),
    _linux("linux_f2fs", "Linux 3.19 F2FS, glibc"),
    _linux("linux_xfs", "Linux 3.19 XFS, glibc"),
    _linux("linux_minix", "Linux 3.19 MINIX, glibc"),
    _linux("linux_nilfs2", "Linux 3.19 NILFS2, glibc"),
    _linux("linux_nfsv3_tmpfs", "Linux NFSv3 over tmpfs"),
    _linux("linux_nfsv4_tmpfs", "Linux NFSv4 over tmpfs"),
    _linux("linux_fusexmp_tmpfs", "FUSE passthrough over tmpfs"),
    _linux("linux_bind_tmpfs", "bind mount over tmpfs"),
    _linux("linux_aufs_tmpfs_ext4", "aufs union of tmpfs and ext4"),
    _linux("linux_overlay_tmpfs_ext4", "overlayfs of tmpfs and ext4"),
    _linux("linux_glusterfs_xfs", "GlusterFS over XFS"),
    # ---- libc and kernel-version variation --------------------------------
    _linux("linux_ext4_musl",
           "Linux 3.19 ext4, musl libc (zero-byte bad-fd write succeeds)",
           write_zero_bad_fd_succeeds=True),
    _linux("linux_tmpfs_musl", "Linux 3.19 tmpfs, musl libc",
           write_zero_bad_fd_succeeds=True),
    _linux("linux_ext4_3.13", "Ubuntu Trusty Linux 3.13, ext4"),
    _linux("linux_ext4_3.14", "Debian sid Linux 3.14, ext4"),
    _linux("linux_tmpfs_3.13", "Ubuntu Trusty Linux 3.13, tmpfs"),
    _linux("linux_tmpfs_3.14", "Debian sid Linux 3.14, tmpfs"),
    _linux("linux_xfs_3.14", "Debian sid Linux 3.14, XFS"),
    _linux("linux_btrfs_3.14",
           "Debian sid Linux 3.14, Btrfs (no dir link counts)",
           dir_nlink_constant=1),
    # ---- Linux: §7.3.2 core-behaviour violations ---------------------------
    _linux("linux_btrfs",
           "Btrfs: directory link counts not maintained (§7.3.2)",
           dir_nlink_constant=1),
    _linux("linux_hfsplus",
           "Linux HFS+: no dir link counts; link-on-symlink EPERM "
           "(§7.3.2)",
           dir_nlink_constant=1, link_symlink_eperm=True),
    _linux("linux_hfsplus_trusty",
           "Ubuntu Trusty Linux 3.13 HFS+: chmod always EOPNOTSUPP "
           "(§7.3.4)",
           dir_nlink_constant=1, link_symlink_eperm=True,
           chmod_errno=Errno.EOPNOTSUPP),
    # ---- SSHFS and its mount options (§7.3.4) ------------------------------
    _linux("linux_sshfs_tmpfs",
           "SSHFS/tmpfs 2.5: EPERM rename deviation (Fig. 4), no link "
           "counts, root-owned creation, umask|=0022",
           umask_policy=UmaskPolicy.OR_0022, **_SSHFS_BASE),
    _linux("linux_sshfs_allow_other",
           "SSHFS allow_other: permissions not enforced at all",
           umask_policy=UmaskPolicy.OR_0022, enforce_permissions=False,
           **_SSHFS_BASE),
    _linux("linux_sshfs_allow_other_default_permissions",
           "SSHFS allow_other,default_permissions: permissions enforced "
           "but creation still root-owned",
           umask_policy=UmaskPolicy.OR_0022, **_SSHFS_BASE),
    _linux("linux_sshfs_umask0000",
           "SSHFS umask=0000 mount option: process umask ignored",
           umask_policy=UmaskPolicy.IGNORE, **_SSHFS_BASE),
    # ---- posixovl (§7.3.5) ---------------------------------------------------
    _linux("linux_posixovl_vfat",
           "posixovl/VFAT 1.2: rename link-count leak exhausts storage",
           rename_link_count_leak=True, capacity_bytes=64_000),
    _linux("linux_posixovl_ntfs3g",
           "posixovl/NTFS-3G: same rename link-count leak",
           rename_link_count_leak=True, capacity_bytes=64_000),
    # ---- OpenZFS on Linux (§7.3.4) -----------------------------------------
    _linux("linux_openzfs", "OpenZFS on Linux 3.19"),
    _linux("linux_openzfs_trusty",
           "OpenZFS 0.6.3 on Ubuntu Trusty: O_APPEND does not seek to "
           "EOF before write/pwrite",
           o_append_no_seek=True),
    # ---- OS X 10.9.5 ------------------------------------------------------
    _osx("osx_hfsplus", "OS X 10.9.5 HFS+ (default)"),
    _osx("osx_nfsv3_hfsplus", "OS X NFSv3 over HFS+"),
    _osx("osx_fusexmp_hfsplus", "OS X FUSE passthrough over HFS+"),
    _osx("osx_sshfs_hfsplus", "OS X SSHFS over HFS+",
         umask_policy=UmaskPolicy.OR_0022, **_SSHFS_BASE),
    _osx("osx_fuse_ext2", "fuse-ext2 on OS X",
         dir_nlink_constant=1),
    _osx("osx_paragon_extfs", "Paragon ExtFS on OS X"),
    _osx("osx_openzfs",
         "OpenZFS 1.3.0 on OS X 10.9.5: unkillable spin after open in a "
         "disconnected directory (Fig. 8)",
         spin_on_create_in_disconnected_cwd=True),
    # ---- FreeBSD ------------------------------------------------------------
    _freebsd("freebsd_tmpfs",
             "FreeBSD tmpfs: O_CREAT|O_DIRECTORY|O_EXCL clobbers "
             "symlinks (§7.3.2)"),
    _freebsd("freebsd_ufs",
             "FreeBSD ufs: O_CREAT|O_DIRECTORY|O_EXCL clobbers "
             "symlinks (§7.3.2)"),
]

_BY_NAME: Dict[str, Quirks] = {cfg.name: cfg for cfg in ALL_CONFIGS}


def config_by_name(name: str) -> Quirks:
    """Look up a survey configuration by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown configuration {name!r}; see ALL_CONFIGS") from None


def configs_for_platform(platform: str) -> List[Quirks]:
    """All configurations whose expected model variant is ``platform``."""
    return [cfg for cfg in ALL_CONFIGS if cfg.platform == platform]
