"""Command-line interface: the turnkey black-box test setup.

The paper positions SibylFS as usable "routinely (with low effort for
the user)" during development and continuous integration.  This CLI
packages the pipeline accordingly::

    python -m repro check TRACE --model linux
    python -m repro check TRACE --platforms all      # one vectored pass
    python -m repro check TRACE --platforms linux,osx
    python -m repro oracles
    python -m repro exec SCRIPT --config linux_ext4 [--check]
    python -m repro gen --out DIR [--scale N]
    python -m repro run --config linux_sshfs_tmpfs [--html report.html]
    python -m repro run --config linux_ext4 --include 'rename*' \\
        --sample 100 --seed 7
    python -m repro run --config linux_ext4 --plan randomized \\
        --sample 50 --seed 3
    python -m repro run --config linux_ext4 --backend sharded \\
        --shards 4
    python -m repro serve --backend sharded --shards 4
    python -m repro serve --store campaign/ --stats-json stats.json
    python -m repro check TRACE --server 127.0.0.1:7323
    python -m repro check --artifact run.json       # streaming summary
    python -m repro run --config linux_ext4 --store campaign/
    python -m repro campaign init campaign/
    python -m repro campaign append campaign/ run.json
    python -m repro campaign survey campaign/ --json survey.json
    python -m repro campaign report campaign/ --html dash.html
    python -m repro campaign gc campaign/
    python -m repro survey
    python -m repro coverage --config linux_ext4
    python -m repro plans
    python -m repro portability TRACE
    python -m repro reduce SCRIPT --config linux_sshfs_tmpfs
    python -m repro debug TRACE --model posix
    python -m repro configs

Suite-level commands (``run``, ``survey``, ``coverage``, ``gen``) build
a :class:`repro.gen.TestPlan` from the selection flags —
``--plan`` (strategy name globs; see ``repro plans``), ``--include`` /
``--exclude`` (script-name globs), ``--sample N`` + ``--seed S``
(seeded reservoir sample), ``--scale`` and ``--limit`` — and stream it
through :class:`repro.api.Session`: one pipeline pass produces a
:class:`repro.api.RunArtifact` (with the plan's provenance and seeds
recorded) that the text summary, the HTML report (``--html``) and the
JSON artifact (``--artifact``) are all rendered from.  Generation
streams into checking, so ``--processes N`` starts checking on the pool
while the plan is still generating.

Exit status: 0 if everything checked conformant, 1 otherwise (suitable
for CI).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import List, Optional

from repro.api import Session, make_backend, survey
from repro.checker import render_checked_trace
from repro.core.platform import SPECS, real_platforms, spec_by_name
from repro.executor import execute_script
from repro.fsimpl import ALL_CONFIGS, config_by_name
from repro.gen import REGISTRY, TestPlan, build_plan
from repro.harness import (merge_results, render_merge,
                           render_summary_table)
from repro.harness.debug import debug_trace, render_debug
from repro.harness.portability import portability_report
from repro.harness.reduce import reduce_script
from repro.oracle import (get_oracle, oracle_name_for,
                          REGISTRY as ORACLES)
from repro.script import (parse_script, parse_trace, print_script,
                          print_trace)


def _read(path: str) -> str:
    return pathlib.Path(path).read_text()


def _progress_printer(total_hint: str = "traces"):
    """A Session progress callback writing a live counter to stderr.

    ``total`` may be 0 when the plan streams without a cheap count
    (e.g. a name filter); the counter then runs open-ended.
    """
    def progress(done: int, total: int, _checked) -> None:
        if total:
            end = "\n" if done == total else "\r"
            print(f"checked {done}/{total} {total_hint}",
                  file=sys.stderr, end=end, flush=True)
        else:
            print(f"checked {done} {total_hint}",
                  file=sys.stderr, end="\r", flush=True)
    return progress


def _parse_platforms(spec: str) -> List[str]:
    """``--platforms`` values: a comma list, ``all``, or ``real``.

    Order-preserving and deduplicated (the first mention wins)."""
    if spec == "all":
        return list(SPECS)
    if spec == "real":
        return list(real_platforms())
    names: List[str] = []
    for name in (n.strip() for n in spec.split(",")):
        if not name or name in names:
            continue
        spec_by_name(name)  # fail fast on typos
        names.append(name)
    return names


def _cmd_check(args) -> int:
    if args.artifact:
        # Artifact mode: summarise a saved RunArtifact JSON without
        # loading it — rows stream through iter_results, so a huge v5
        # artifact costs one row of memory, not file + artifact.
        from repro.api import iter_results, read_header

        header = read_header(args.artifact)
        total = accepted = 0
        counts: dict = {p: 0 for p in header.get("check_on", ())}
        for row in iter_results(args.artifact):
            total += 1
            if row.checked.accepted:
                accepted += 1
            for profile in row.profiles:
                if profile.accepted:
                    counts[profile.platform] = \
                        counts.get(profile.platform, 0) + 1
        print(f"{args.artifact}: {accepted}/{total} traces accepted "
              f"({header['config']} vs {header['model']}, "
              f"format v{header['format']})")
        for platform, count in counts.items():
            print(f"  {platform:<8} {count}/{total} accepted")
        return 0 if accepted == total else 1
    if args.trace is None:
        print("repro check: a TRACE file (or --artifact) is required",
              file=sys.stderr)
        return 2
    if args.server:
        # Served checking: the trace travels to a running `repro
        # serve` as text; the model/platform set is the *server's*
        # (it owns the warm oracle), so --model/--platforms are
        # ignored here.  The wire profiles rebuild losslessly.
        from repro.oracle import ConformanceProfile, Verdict
        from repro.service.client import ServiceClient

        trace_text = _read(args.trace)
        with ServiceClient(args.server) as client:
            reply = client.check(trace_text)
        verdict = Verdict(
            trace=parse_trace(trace_text),
            profiles=tuple(ConformanceProfile.from_dict(row)
                           for row in reply["profiles"]))
        print(verdict.render())
        return 0 if verdict.accepted else 1
    trace = parse_trace(_read(args.trace))
    if args.platforms:
        oracle = get_oracle(
            oracle_name_for(_parse_platforms(args.platforms)))
        verdict = oracle.check(trace)
        print(verdict.render())
        return 0 if verdict.accepted else 1
    verdict = get_oracle(args.model).check(trace)
    print(render_checked_trace(verdict.primary_checked), end="")
    return 0 if verdict.accepted else 1


def _cmd_serve(args) -> int:
    import json
    import signal
    import threading

    from repro.service.server import run_server
    from repro.service.service import CheckingService

    model = (oracle_name_for(_parse_platforms(args.platforms))
             if args.platforms else args.model)
    if args.engine == "compiled":
        model = "compiled:" + model
    shards = 0 if args.backend == "serial" else args.shards
    service = CheckingService(model, shards=shards,
                              warmup=args.warmup,
                              miss_watermark=args.watermark,
                              store=args.store)
    service.start()

    def ready(server) -> None:
        # Parseable by scripts (the CI smoke job greps this line for
        # the bound port — --port 0 picks a free one).
        print(f"repro serve: listening on {server.address()} "
              f"(model={model}, shards={service.shards})",
              flush=True)

    def write_stats() -> None:
        if args.stats_json:
            pathlib.Path(args.stats_json).write_text(
                json.dumps(service.stats(), indent=2, sort_keys=True)
                + "\n")

    stop_flush = threading.Event()

    def flush_loop() -> None:
        # Periodic durability: a SIGKILLed server still leaves its
        # last stats snapshot and a current store index behind.
        while not stop_flush.wait(max(1.0, args.stats_interval)):
            try:
                write_stats()
                if service.store is not None:
                    service.store.flush()
            except Exception:  # pragma: no cover - best effort
                pass

    flusher = None
    if args.stats_json or service.store is not None:
        flusher = threading.Thread(target=flush_loop, daemon=True,
                                   name="repro-serve-flush")
        flusher.start()

    def on_sigterm(_signum, _frame):  # pragma: no cover - signal path
        # Raise out of the event loop so the finally block below runs:
        # SIGTERM leaves the same stats file and closed store a clean
        # shutdown would.
        raise SystemExit(143)

    previous = signal.signal(signal.SIGTERM, on_sigterm)
    try:
        run_server(service, args.host, args.port, ready=ready)
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        stop_flush.set()
        if flusher is not None:
            flusher.join(timeout=5.0)
        stats = service.stats()
        service.shutdown()
        if args.stats_json:
            pathlib.Path(args.stats_json).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n")
    print("repro serve: stopped", flush=True)
    return 0


def _cmd_oracles(_args) -> int:
    for name, platforms, summary in ORACLES.describe():
        print(f"{name:<18} [{','.join(platforms)}]  {summary}")
    print("vectored:A+B[+...]  any platform combination, one pass "
          "(first = primary)")
    return 0


def _cmd_exec(args) -> int:
    script = parse_script(_read(args.script))
    trace = execute_script(config_by_name(args.config), script)
    print(print_trace(trace), end="")
    if args.check:
        model = args.model or config_by_name(args.config).platform
        verdict = get_oracle(model).check(trace)
        print(render_checked_trace(verdict.primary_checked), end="")
        return 0 if verdict.accepted else 1
    return 0


def _plan_from_args(args) -> TestPlan:
    """The :class:`TestPlan` described by the selection flags."""
    names = getattr(args, "plan", None)
    return build_plan(
        names=[n.strip() for n in names.split(",") if n.strip()]
        if names else None,
        include=getattr(args, "include", None),
        exclude=getattr(args, "exclude", None),
        sample=getattr(args, "sample", None),
        seed=getattr(args, "seed", 0),
        scale=getattr(args, "scale", 1),
        limit=getattr(args, "limit", 0))


def _cmd_gen(args) -> int:
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    count = 0
    for script in _plan_from_args(args).scripts():
        (out / f"{script.name}.script").write_text(
            print_script(script))
        count += 1
    print(f"wrote {count} scripts to {out}")
    return 0


def _cmd_run(args) -> int:
    with make_backend(args.processes, chunksize=args.chunksize,
                      backend=args.backend,
                      shards=args.shards) as backend:
        with Session(args.config, model=args.model,
                     check_on=_parse_platforms(args.check_on)
                     if args.check_on else None,
                     plan=_plan_from_args(args), backend=backend,
                     engine=args.engine,
                     store=args.store) as session:
            artifact = session.run(
                progress=_progress_printer() if args.progress
                else None)
            if args.store:
                stats = session.store.stats()
                print(f"campaign store {args.store}: "
                      f"{stats['rows']} rows "
                      f"({stats['dedup_hits']} deduped)")
    # Every output below renders from this one artifact: the suite was
    # generated, executed and checked exactly once (as one stream).
    print(artifact.render_summary())
    if args.html:
        pathlib.Path(args.html).write_text(artifact.render_html())
        print(f"HTML report written to {args.html}")
    if args.artifact:
        artifact.save(args.artifact)
        print(f"JSON artifact written to {args.artifact}")
    return 0 if not artifact.failing else 1


def _cmd_survey(args) -> int:
    configs = (args.configs.split(",") if args.configs
               else [cfg.name for cfg in ALL_CONFIGS])
    with make_backend(args.processes, chunksize=args.chunksize,
                      backend=args.backend,
                      shards=args.shards) as backend:
        artifacts = survey(configs, plan=_plan_from_args(args),
                           backend=backend, engine=args.engine)
    print(render_summary_table([a.suite_result for a in artifacts]))
    print()
    print(render_merge(merge_results(artifacts)))
    return 0


def _cmd_coverage(args) -> int:
    from repro.analysis.dead import install_dead_clauses
    from repro.core.coverage import REGISTRY as COVERAGE

    # Same dead-clause view as the fuzz loop: frontier and denominator
    # exclude clauses a platform's spec switches statically preclude.
    install_dead_clauses()

    with make_backend(args.processes, chunksize=args.chunksize,
                      backend=args.backend,
                      shards=args.shards) as backend:
        # engine=args.engine is passed through so --engine compiled
        # fails with Session's coverage-incompatibility error instead
        # of being silently ignored.
        session = Session(args.config, model=args.model,
                          plan=_plan_from_args(args),
                          backend=backend, engine=args.engine,
                          collect_coverage=True)
        artifact = session.run()
        report = artifact.coverage_report()
    # The reachable-but-unhit clauses, per platform: the frontier a
    # coverage-guided campaign (repro fuzz) chases.
    frontier = COVERAGE.frontier(artifact.covered_clauses,
                                 sorted(SPECS))
    dead_by_platform = {platform: sorted(COVERAGE.statically_dead(
        platform)) for platform in sorted(SPECS)}
    if args.json:
        payload = report.to_dict()
        payload["config"] = session.quirks.name
        payload["model"] = session.model
        payload["uncovered_by_platform"] = frontier
        payload["dead_by_platform"] = dead_by_platform
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"coverage JSON written to {args.json}")
        if not args.uncovered:
            return 0
    if args.uncovered:
        # Dead clauses are annotated (commented), not listed as gaps:
        # they are provably not reachable on that platform, so no
        # campaign should chase them.
        for platform in sorted(frontier):
            for clause in frontier[platform]:
                print(f"{platform} {clause}")
            for clause in dead_by_platform[platform]:
                print(f"# {platform} {clause} (statically dead)")
        return 0
    print(report.render())
    return 0


def _cmd_fuzz(args) -> int:
    """The coverage-guided fuzzing loop (importing :mod:`repro.fuzz`
    also registers the ``fuzz`` campaign-store view)."""
    from repro.fuzz import run_fuzz

    if args.engine == "compiled":
        print("repro fuzz: --engine compiled is unsupported — the "
              "fuzz loop is coverage-guided, and compiled walks "
              "never re-execute transition bodies", file=sys.stderr)
        return 2
    platforms = (_parse_platforms(args.platforms)
                 if args.platforms else None)

    def progress(done: int, total: int, stats: dict) -> None:
        sizes = ",".join(f"{p}:{n}" for p, n in
                         sorted(stats.get("frontier_sizes",
                                          {}).items()))
        print(f"iteration {done}/{total}: corpus "
              f"{stats['corpus_size']}, covered "
              f"{stats['covered_clauses']} clauses, frontier "
              f"[{sizes}]", file=sys.stderr, flush=True)

    report = run_fuzz(
        args.config, platforms=platforms,
        iterations=args.iterations, batch=args.batch, seed=args.seed,
        store=args.store,
        backend=args.backend, processes=args.processes,
        shards=args.shards, chunksize=args.chunksize,
        progress=progress if args.progress else None)
    last = report.history[-1] if report.history else {}
    print(f"fuzz: {report.config} on "
          f"{'+'.join(report.platforms)}; corpus "
          f"{report.corpus_size} scripts, "
          f"{len(report.covered)} clauses covered after "
          f"{report.iterations} iteration(s)")
    for platform, clauses in sorted(report.frontier.items()):
        print(f"  frontier {platform:<8} {len(clauses)} "
              f"reachable clauses unhit")
    if last.get("divergent"):
        print(f"  {last['divergent']} corpus script(s) "
              f"platform-divergent")
    if args.frontier_json:
        pathlib.Path(args.frontier_json).write_text(
            report.to_json() + "\n")
        print(f"fuzz report JSON written to {args.frontier_json}")
    return 0


def _cmd_lint(args) -> int:
    """Static analysis over the repo: invariant lints + dead clauses."""
    from repro.analysis.dead import dead_clause_report
    from repro.analysis.lint import lint_paths, render_findings

    findings = lint_paths(args.paths,
                          rules=args.rules.split(",")
                          if args.rules else None)
    if args.json:
        payload = [dataclasses.asdict(f) for f in findings]
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"lint findings JSON written to {args.json}",
              file=sys.stderr)
    if args.dead_report:
        report = dead_clause_report()
        pathlib.Path(args.dead_report).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
            + "\n")
        print(f"dead-clause report written to {args.dead_report}",
              file=sys.stderr)
    print(render_findings(findings))
    return 1 if findings else 0


def _cmd_lint_script(args) -> int:
    """Explain the abstract interpreter's verdict for one script."""
    from repro.analysis.absint import DOOMED, classify_script

    quirks = config_by_name(args.config) if args.config else None
    script = parse_script(_read(args.script))
    report = classify_script(script, quirks=quirks)
    print(report.render())
    return 1 if report.verdict == DOOMED else 0


def _cmd_plans(_args) -> int:
    total = 0
    for strategy in REGISTRY:
        estimate = strategy.estimate()
        total += estimate
        tags = ",".join(sorted(strategy.tags))
        print(f"{strategy.name:<18} {estimate:>6}  [{tags}]")
    print(f"{'TOTAL':<18} {total:>6}")
    return 0


def _cmd_portability(args) -> int:
    # One vectored pass over every model variant (SPECS order), folded
    # into the section 9 portability report.
    verdict = get_oracle("all").check(parse_trace(_read(args.trace)))
    report = portability_report(verdict)
    print(report.render())
    return 0 if report.portable else 1


def _cmd_reduce(args) -> int:
    from repro.harness.reduce import script_fails

    script = parse_script(_read(args.script))
    if not script_fails(args.config, script, model=args.model):
        print("# script does not fail on this configuration; "
              "nothing to reduce", file=sys.stderr)
        return 1
    reduced = reduce_script(args.config, script, model=args.model)
    print(print_script(reduced), end="")
    return 0


def _cmd_debug(args) -> int:
    trace = parse_trace(_read(args.trace))
    steps = debug_trace(spec_by_name(args.model), trace)
    print(render_debug(steps))
    return 0 if all(step.matched for step in steps) else 1


def _cmd_configs(_args) -> int:
    for cfg in ALL_CONFIGS:
        print(f"{cfg.name:<46} [{cfg.platform}]  {cfg.description}")
    return 0


def _cmd_campaign(args) -> int:
    """The campaign-store verbs: everything renders from the store's
    incremental folded views — no artifact is ever loaded whole."""
    from repro.store import (CampaignStore, render_dashboard,
                             render_survey)

    if args.action == "init":
        CampaignStore(args.dir).close()
        print(f"initialised campaign store at {args.dir}")
        return 0
    with CampaignStore(args.dir, create=False) as store:
        if args.action == "append":
            from repro.api import import_artifact_file
            for path in args.artifacts:
                result = import_artifact_file(store, path)
                print(f"{path}: {result['appended']} rows appended, "
                      f"{result['deduped']} deduped "
                      f"(partition {result['partition']})")
            return 0
        if args.action == "merge":
            from repro.harness import render_merge
            records = store.view("merge")
            if not records:
                print("no deviations recorded")
                return 0
            print(render_merge(records))
            return 0
        if args.action == "survey":
            survey_state = store.refresh_view("survey")
            print(render_survey(survey_state))
            if args.json:
                pathlib.Path(args.json).write_text(
                    store.view_json("survey"))
                print(f"survey JSON written to {args.json}")
            return 0
        if args.action == "report":
            page = render_dashboard(
                args.title or f"campaign: {args.dir}",
                survey=store.refresh_view("survey"),
                merge=store.view("merge"),
                portability=store.refresh_view("portability"),
                coverage=store.refresh_view("coverage"),
                stats=store.stats())
            pathlib.Path(args.html).write_text(page)
            print(f"campaign dashboard written to {args.html}")
            return 0
        if args.action == "export":
            from repro.api import export_artifact
            artifact = export_artifact(store, args.partition)
            artifact.save(args.out)
            print(f"exported {artifact.total} traces of partition "
                  f"{args.partition} to {args.out}")
            return 0
        if args.action == "gc":
            result = store.gc()
            print(f"gc: {result['rows_before']} -> "
                  f"{result['rows_after']} rows, "
                  f"{result['bytes_before']} -> "
                  f"{result['bytes_after']} bytes, "
                  f"{result['segments_before']} -> "
                  f"{result['segments_after']} segment(s)")
            return 0
    raise AssertionError(f"unhandled campaign action {args.action!r}")


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--processes", type=int, default=1,
                        help="worker processes (>1 selects the "
                             "process-pool backend)")
    parser.add_argument("--chunksize", type=int, default=None,
                        help="traces per worker chunk (default: "
                             "derived from the suite size)")
    parser.add_argument("--backend", default=None,
                        choices=["serial", "process", "sharded"],
                        help="backend family (default: derived from "
                             "--processes/--shards); 'sharded' "
                             "partitions the suite across shard "
                             "workers sharing one read-mostly "
                             "transition memo")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard workers for the sharded backend "
                             "(default: --processes, else CPU count); "
                             "implies --backend sharded")
    parser.add_argument("--engine", default=None,
                        choices=["interned", "compiled"],
                        help="checking engine (default: interned); "
                             "'compiled' freezes the warmed transition "
                             "memo into dense int64 successor tables "
                             "and walks traces as int-array "
                             "operations, falling back to the memo on "
                             "any miss (identical verdicts)")


def _add_plan_flags(parser: argparse.ArgumentParser) -> None:
    """The TestPlan selection flags shared by the suite commands."""
    parser.add_argument("--plan", default=None, metavar="NAMES",
                        help="comma-separated strategy name globs "
                             "(see 'repro plans'; default: every "
                             "strategy except randomized)")
    parser.add_argument("--include", action="append", default=None,
                        metavar="GLOB",
                        help="keep only script names matching a glob "
                             "(repeatable)")
    parser.add_argument("--exclude", action="append", default=None,
                        metavar="GLOB",
                        help="drop script names matching a glob "
                             "(repeatable)")
    parser.add_argument("--sample", type=int, default=None, metavar="N",
                        help="seeded reservoir sample of N scripts")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for --sample and for the randomized "
                             "strategy (recorded in the artifact)")
    parser.add_argument("--scale", type=int, default=1,
                        help="replicate the population N times "
                             "(renamed copies, for throughput runs)")
    parser.add_argument("--limit", type=int, default=0,
                        help="stop after the first N scripts")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SibylFS reproduction: oracle-based file-system "
                    "testing")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="check a trace against one model "
                                     "or several in one pass")
    p.add_argument("trace", nargs="?", default=None)
    p.add_argument("--artifact", default=None, metavar="PATH",
                   help="summarise a saved RunArtifact JSON instead "
                        "of checking a trace (streams the rows; the "
                        "artifact is never loaded whole)")
    p.add_argument("--model", default="posix", choices=sorted(SPECS))
    p.add_argument("--platforms", default=None, metavar="LIST",
                   help="comma-separated platforms, 'all' or 'real': "
                        "check them all in a single vectored pass "
                        "(overrides --model; exit 0 iff every "
                        "platform accepts)")
    p.add_argument("--server", default=None, metavar="HOST:PORT",
                   help="check through a running 'repro serve' "
                        "instead of in-process (the server's model "
                        "decides the platforms)")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("serve", help="run the persistent checking "
                                     "service (line-JSON over TCP)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0: pick a free one; the "
                        "bound address is printed on stdout)")
    p.add_argument("--model", default="all",
                   help="oracle name to serve (default 'all': every "
                        "platform in one vectored pass)")
    p.add_argument("--platforms", default=None, metavar="LIST",
                   help="comma-separated platforms, 'all' or 'real' "
                        "(overrides --model)")
    p.add_argument("--backend", default="sharded",
                   choices=["serial", "sharded"],
                   help="'sharded' checks on a persistent shard pool; "
                        "'serial' checks in-process on the warm "
                        "oracle")
    p.add_argument("--shards", type=int, default=None,
                   help="shard workers (default: CPU count, min 2)")
    p.add_argument("--engine", default=None,
                   choices=["interned", "compiled"],
                   help="checking engine (default: interned); "
                        "'compiled' serves every verdict from dense "
                        "int64 successor tables compiled from the "
                        "warmed memo, falling back on any miss")
    p.add_argument("--warmup", type=int, default=16,
                   help="traces checked in the parent before each "
                        "arena epoch is published")
    p.add_argument("--watermark", type=int, default=256,
                   help="pool arena misses that trigger an epoch "
                        "republish (<=0: first epoch only)")
    p.add_argument("--stats-json", default=None, metavar="PATH",
                   help="write the service's cumulative stats as JSON "
                        "— periodically, on SIGTERM and on shutdown "
                        "(a killed server still leaves its last "
                        "snapshot)")
    p.add_argument("--stats-interval", type=float, default=30.0,
                   metavar="SECONDS",
                   help="periodic stats/store flush interval "
                        "(default 30)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="append every served verdict to a campaign "
                        "store (created if absent); content-addressed, "
                        "so retries dedup and the campaign survives "
                        "restarts")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("oracles", help="list registered checking "
                                       "oracles")
    p.set_defaults(func=_cmd_oracles)

    p = sub.add_parser("exec", help="execute a script on a "
                                    "configuration")
    p.add_argument("script")
    p.add_argument("--config", required=True)
    p.add_argument("--check", action="store_true")
    p.add_argument("--model", default=None)
    p.set_defaults(func=_cmd_exec)

    p = sub.add_parser("gen", help="write the planned suite to disk")
    p.add_argument("--out", required=True)
    _add_plan_flags(p)
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser("run", help="plan, execute and check a suite "
                                   "(one streamed pass)")
    p.add_argument("--config", required=True)
    p.add_argument("--model", default=None)
    p.add_argument("--check-on", default=None, metavar="LIST",
                   help="also check every trace against these "
                        "platforms (comma list, 'all' or 'real') in "
                        "the same vectored pass; the artifact records "
                        "per-platform profiles (format v3)")
    _add_plan_flags(p)
    _add_backend_flags(p)
    p.add_argument("--html", default=None,
                   help="also write an HTML report (same pass)")
    p.add_argument("--artifact", default=None,
                   help="also write the RunArtifact as JSON (for CI "
                        "diffing; records the plan and seeds)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="also append every verdict to a campaign "
                        "store as it arrives (created if absent; "
                        "re-runs dedup)")
    p.add_argument("--progress", action="store_true",
                   help="stream per-trace progress to stderr")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("survey", help="run all configurations and "
                                      "merge deviations")
    p.add_argument("--configs", default=None,
                   help="comma-separated subset")
    _add_plan_flags(p)
    _add_backend_flags(p)
    p.set_defaults(func=_cmd_survey)

    p = sub.add_parser("coverage", help="measure model coverage")
    p.add_argument("--config", default="linux_ext4")
    p.add_argument("--model", default=None)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the coverage report as JSON: covered "
                        "and uncovered clause lists plus the "
                        "per-platform reachable-but-unhit frontier")
    p.add_argument("--uncovered", action="store_true",
                   help="print the reachable-but-unhit clauses, one "
                        "'<platform> <clause>' per line, instead of "
                        "the rendered report")
    _add_plan_flags(p)
    _add_backend_flags(p)
    p.set_defaults(func=_cmd_coverage)

    p = sub.add_parser("fuzz", help="coverage-guided scenario fuzzing "
                                    "(mutate toward rare clauses and "
                                    "platform divergence)")
    p.add_argument("--config", default="linux_ext4")
    p.add_argument("--platforms", default=None, metavar="LIST",
                   help="comma-separated platforms, 'all' or 'real' "
                        "(default: every real platform, so the "
                        "divergence signal is live); the first entry "
                        "is the primary model")
    p.add_argument("--iterations", type=int, default=8,
                   help="fuzzing iterations (iteration 0 of a fresh "
                        "campaign runs the scenario seed families)")
    p.add_argument("--batch", type=int, default=8,
                   help="mutants per iteration")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed (same seed + budget + store state "
                        "=> identical corpus and frontier history)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="persist the corpus in a campaign store "
                        "(created if absent) and resume from it; "
                        "keeps the incremental 'fuzz' view fresh")
    p.add_argument("--frontier-json", default=None, metavar="PATH",
                   help="write the full fuzz report (per-iteration "
                        "frontier history, covered clauses, corpus "
                        "size) as JSON — the CI artifact")
    p.add_argument("--progress", action="store_true",
                   help="stream per-iteration progress to stderr")
    _add_backend_flags(p)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("plans", help="list registered generation "
                                     "strategies with estimates")
    p.set_defaults(func=_cmd_plans)

    p = sub.add_parser("lint", help="run the repo-invariant linter "
                                    "(layering, lock discipline, "
                                    "determinism, pickle-safety, "
                                    "clause consistency)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories to lint "
                        "(default: src/repro)")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule subset (default: all)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the findings as JSON")
    p.add_argument("--dead-report", default=None, metavar="PATH",
                   help="also write the per-platform dead-clause "
                        "analysis as JSON")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("lint-script",
                       help="explain the abstract interpreter's "
                            "well-formed/doomed verdict per step")
    p.add_argument("script", help="script file (or - for stdin)")
    p.add_argument("--config", default=None,
                   help="sharpen verdicts with one configuration's "
                        "quirks (e.g. a config failing every chmod)")
    p.set_defaults(func=_cmd_lint_script)

    p = sub.add_parser("portability",
                       help="which platforms allow a trace?")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_portability)

    p = sub.add_parser("reduce", help="shrink a failing script")
    p.add_argument("script")
    p.add_argument("--config", required=True)
    p.add_argument("--model", default=None)
    p.set_defaults(func=_cmd_reduce)

    p = sub.add_parser("debug", help="show the tracked state set at "
                                     "every step")
    p.add_argument("trace")
    p.add_argument("--model", default="posix", choices=sorted(SPECS))
    p.set_defaults(func=_cmd_debug)

    p = sub.add_parser("configs", help="list the survey configurations")
    p.set_defaults(func=_cmd_configs)

    p = sub.add_parser("campaign",
                       help="manage an append-only campaign store "
                            "(init/append/merge/survey/report/"
                            "export/gc)")
    campaign = p.add_subparsers(dest="action", required=True)
    c = campaign.add_parser("init", help="create an empty store")
    c.add_argument("dir")
    c = campaign.add_parser("append",
                            help="import RunArtifact JSON files "
                                 "(streaming; re-imports dedup)")
    c.add_argument("dir")
    c.add_argument("artifacts", nargs="+", metavar="ARTIFACT")
    c = campaign.add_parser("merge",
                            help="merged cross-platform deviations "
                                 "from the folded merge view")
    c.add_argument("dir")
    c = campaign.add_parser("survey",
                            help="per-partition conformance counts "
                                 "from the folded survey view")
    c.add_argument("dir")
    c.add_argument("--json", default=None, metavar="PATH",
                   help="also write the survey view state as "
                        "canonical JSON (byte-stable across re-runs)")
    c = campaign.add_parser("report",
                            help="render the HTML campaign dashboard "
                                 "from the folded views")
    c.add_argument("dir")
    c.add_argument("--html", required=True, metavar="PATH")
    c.add_argument("--title", default=None)
    c = campaign.add_parser("export",
                            help="rebuild one partition as a "
                                 "RunArtifact JSON")
    c.add_argument("dir")
    c.add_argument("partition")
    c.add_argument("--out", required=True, metavar="PATH")
    c = campaign.add_parser("gc",
                            help="compact segments: drop duplicate "
                                 "rows and superseded meta rows")
    c.add_argument("dir")
    for c in campaign.choices.values():
        c.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
