"""State module: the abstract dir-heap over which the model works.

Corresponds to the paper's *state* module (Fig. 5): a finite map from
directory references to directories and from file references to files,
abstracting away from block-structured storage entirely.
"""

from repro.state.meta import Meta
from repro.state.heap import (Dir, DirRef, File, FileRef, FsState, Ref,
                              empty_fs)

__all__ = ["Meta", "Dir", "DirRef", "File", "FileRef", "FsState", "Ref",
           "empty_fs"]
