"""The dir heap: directories and file objects referenced by abstract refs.

This is the paper's *state* module.  Its interface is expressed in terms
of references (``dh_dir_ref`` / ``dh_file_ref``), permits arbitrary
linking and unlinking, and can represent **disconnected** files and
directories — objects that no longer appear in the directory tree but are
still accessible through an open handle or a process's working directory.
(Disconnected directories are exactly the scenario of the OpenZFS defect
in paper Fig. 8.)

Everything is immutable: every mutator returns a fresh :class:`FsState`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Tuple, Union

from repro.core.flags import FileKind
from repro.state.meta import Meta
from repro.util.fdict import fdict


@dataclasses.dataclass(frozen=True, order=True)
class DirRef:
    """Abstract reference to a directory object."""

    id: int

    def __repr__(self) -> str:
        return f"d{self.id}"


@dataclasses.dataclass(frozen=True, order=True)
class FileRef:
    """Abstract reference to a file object (regular file or symlink)."""

    id: int

    def __repr__(self) -> str:
        return f"f{self.id}"


Ref = Union[DirRef, FileRef]


@dataclasses.dataclass(frozen=True)
class Dir:
    """A directory: named entries, a parent pointer, and metadata.

    ``parent`` is ``None`` for the root and for disconnected directories.
    """

    entries: fdict
    parent: Optional[DirRef]
    meta: Meta


@dataclasses.dataclass(frozen=True)
class File:
    """A file object: regular data or a symlink target.

    ``nlink`` counts directory entries referencing the object; an object
    with ``nlink == 0`` is disconnected but may still be readable via an
    open file description.
    """

    kind: FileKind
    content: bytes
    meta: Meta
    nlink: int

    def __post_init__(self) -> None:
        if self.kind is FileKind.DIRECTORY:
            raise ValueError("directories live in FsState.dirs, not files")


@dataclasses.dataclass(frozen=True)
class FsState:
    """The abstract file-system state: two heaps and a root reference.

    ``next_ref`` provides deterministic fresh-reference allocation, which
    keeps states comparable across identical operation sequences (the
    checker deduplicates states by equality).  ``clock`` is the logical
    clock driving the timestamps trait.
    """

    dirs: fdict
    files: fdict
    root: DirRef
    next_ref: int
    clock: int = 0

    # -- lookups --------------------------------------------------------------
    def dir(self, ref: DirRef) -> Dir:
        return self.dirs[ref]

    def file(self, ref: FileRef) -> File:
        return self.files[ref]

    def lookup(self, dref: DirRef, name: str) -> Optional[Ref]:
        """The ref bound to ``name`` in directory ``dref``, or None."""
        return self.dirs[dref].entries.get(name)

    def entry_names(self, dref: DirRef) -> Tuple[str, ...]:
        """Entry names of a directory, in deterministic (sorted) order."""
        return tuple(sorted(self.dirs[dref].entries))

    def is_empty_dir(self, dref: DirRef) -> bool:
        return len(self.dirs[dref].entries) == 0

    def dir_nlink(self, dref: DirRef) -> int:
        """Computed link count of a directory: 2 + number of subdirs."""
        subdirs = sum(1 for ref in self.dirs[dref].entries.values()
                      if isinstance(ref, DirRef))
        return 2 + subdirs

    def is_connected_dir(self, dref: DirRef) -> bool:
        """True if the directory is reachable from the root."""
        seen = set()
        cur: Optional[DirRef] = dref
        while cur is not None and cur not in seen:
            if cur == self.root:
                return True
            seen.add(cur)
            cur = self.dirs[cur].parent
        return False

    def is_ancestor(self, anc: DirRef, dref: DirRef) -> bool:
        """True if ``anc`` is a proper ancestor of ``dref``.

        Used by the rename check forbidding a directory from being moved
        into a subdirectory of itself.
        """
        cur = self.dirs[dref].parent
        seen = set()
        while cur is not None and cur not in seen:
            if cur == anc:
                return True
            seen.add(cur)
            cur = self.dirs[cur].parent
        return False

    def iter_dirs(self) -> Iterator[Tuple[DirRef, Dir]]:
        return iter(sorted(self.dirs.items(), key=lambda kv: kv[0]))

    # -- reference allocation --------------------------------------------------
    def _fresh(self) -> Tuple["FsState", int]:
        return dataclasses.replace(self, next_ref=self.next_ref + 1), \
            self.next_ref

    def tick(self) -> "FsState":
        """Advance the logical clock (timestamps trait)."""
        return dataclasses.replace(self, clock=self.clock + 1)

    # -- directory mutators -----------------------------------------------------
    def create_dir(self, parent: DirRef, name: str,
                   meta: Meta) -> Tuple["FsState", DirRef]:
        """Create an empty directory entry ``name`` under ``parent``."""
        s, n = self._fresh()
        dref = DirRef(n)
        new_dir = Dir(entries=fdict(), parent=parent, meta=meta)
        dirs = s.dirs.set(dref, new_dir)
        pdir = dirs[parent]
        dirs = dirs.set(parent, dataclasses.replace(
            pdir, entries=pdir.entries.set(name, dref)))
        return dataclasses.replace(s, dirs=dirs), dref

    def create_file(self, parent: DirRef, name: str, meta: Meta,
                    kind: FileKind = FileKind.REGULAR,
                    content: bytes = b"") -> Tuple["FsState", FileRef]:
        """Create a file (or symlink) entry ``name`` under ``parent``."""
        s, n = self._fresh()
        fref = FileRef(n)
        files = s.files.set(fref, File(kind=kind, content=content,
                                       meta=meta, nlink=1))
        pdir = s.dirs[parent]
        dirs = s.dirs.set(parent, dataclasses.replace(
            pdir, entries=pdir.entries.set(name, fref)))
        return dataclasses.replace(s, dirs=dirs, files=files), fref

    def add_link(self, parent: DirRef, name: str,
                 fref: FileRef) -> "FsState":
        """Add a hard link ``name`` -> existing file object ``fref``."""
        f = self.files[fref]
        files = self.files.set(fref, dataclasses.replace(
            f, nlink=f.nlink + 1))
        pdir = self.dirs[parent]
        dirs = self.dirs.set(parent, dataclasses.replace(
            pdir, entries=pdir.entries.set(name, fref)))
        return dataclasses.replace(self, dirs=dirs, files=files)

    def remove_entry(self, parent: DirRef, name: str) -> "FsState":
        """Remove entry ``name`` from ``parent``.

        Removing a file entry decrements the object's link count; the
        object itself is retained in the heap (it may be disconnected but
        still open).  Removing a directory entry disconnects the directory
        (its parent pointer is cleared) — the object survives so that open
        handles and working directories into it keep a referent.
        """
        pdir = self.dirs[parent]
        ref = pdir.entries[name]
        dirs = self.dirs.set(parent, dataclasses.replace(
            pdir, entries=pdir.entries.remove(name)))
        files = self.files
        if isinstance(ref, FileRef):
            f = files[ref]
            files = files.set(ref, dataclasses.replace(
                f, nlink=f.nlink - 1))
        else:
            child = dirs[ref]
            dirs = dirs.set(ref, dataclasses.replace(child, parent=None))
        return dataclasses.replace(self, dirs=dirs, files=files)

    def move_entry(self, src_parent: DirRef, src_name: str,
                   dst_parent: DirRef, dst_name: str) -> "FsState":
        """Atomically move an entry (the core of ``rename``).

        If the destination name exists it is replaced, with the usual
        link-count bookkeeping on the displaced object.
        """
        ref = self.dirs[src_parent].entries[src_name]
        s = self
        dst_dir = s.dirs[dst_parent]
        displaced = dst_dir.entries.get(dst_name)
        if displaced is not None and displaced != ref:
            s = s.remove_entry(dst_parent, dst_name)
        # Remove the source entry without touching the moved object's
        # counts or parent pointer (we re-add it immediately below).
        src_dir = s.dirs[src_parent]
        dirs = s.dirs.set(src_parent, dataclasses.replace(
            src_dir, entries=src_dir.entries.remove(src_name)))
        s = dataclasses.replace(s, dirs=dirs)
        dst_dir = s.dirs[dst_parent]
        dirs = s.dirs.set(dst_parent, dataclasses.replace(
            dst_dir, entries=dst_dir.entries.set(dst_name, ref)))
        s = dataclasses.replace(s, dirs=dirs)
        if isinstance(ref, DirRef):
            moved = s.dirs[ref]
            s = dataclasses.replace(s, dirs=s.dirs.set(
                ref, dataclasses.replace(moved, parent=dst_parent)))
        return s

    # -- file-object mutators -----------------------------------------------------
    def set_file_meta(self, fref: FileRef, meta: Meta) -> "FsState":
        f = self.files[fref]
        return dataclasses.replace(self, files=self.files.set(
            fref, dataclasses.replace(f, meta=meta)))

    def set_dir_meta(self, dref: DirRef, meta: Meta) -> "FsState":
        d = self.dirs[dref]
        return dataclasses.replace(self, dirs=self.dirs.set(
            dref, dataclasses.replace(d, meta=meta)))

    def write_span(self, fref: FileRef, offset: int,
                   data: bytes) -> "FsState":
        """Write ``data`` at ``offset``, zero-filling any hole."""
        f = self.files[fref]
        content = f.content
        if offset > len(content):
            content = content + b"\x00" * (offset - len(content))
        content = content[:offset] + data + content[offset + len(data):]
        return dataclasses.replace(self, files=self.files.set(
            fref, dataclasses.replace(f, content=content)))

    def read_span(self, fref: FileRef, offset: int, count: int) -> bytes:
        """Read up to ``count`` bytes at ``offset``."""
        content = self.files[fref].content
        if offset >= len(content):
            return b""
        return content[offset:offset + count]

    def truncate_file(self, fref: FileRef, length: int) -> "FsState":
        """Truncate or zero-extend a file to ``length`` bytes."""
        f = self.files[fref]
        content = f.content[:length]
        if len(content) < length:
            content = content + b"\x00" * (length - len(content))
        return dataclasses.replace(self, files=self.files.set(
            fref, dataclasses.replace(f, content=content)))

    def file_size(self, fref: FileRef) -> int:
        return len(self.files[fref].content)


def empty_fs(root_mode: int = 0o755, root_uid: int = 0,
             root_gid: int = 0) -> FsState:
    """The initial state: an empty root directory (paper section 5).

    Test execution starts from an empty file system (the executor's
    chroot-jail analogue), so ``S_0`` is always this state.
    """
    root = DirRef(0)
    root_dir = Dir(entries=fdict(), parent=None,
                   meta=Meta(mode=root_mode, uid=root_uid, gid=root_gid))
    return FsState(dirs=fdict({root: root_dir}), files=fdict(),
                   root=root, next_ref=1)
