"""Per-object metadata: ownership, mode bits and timestamps.

Timestamps belong to the *timestamps trait* (paper section 4): when the
trait is off they stay at zero and are ignored; in immediate mode they are
set from the model's logical clock on every relevant operation.
"""

from __future__ import annotations

import dataclasses

from repro.core.flags import MODE_MASK


@dataclasses.dataclass(frozen=True)
class Meta:
    """Ownership, permission bits, and (logical) timestamps."""

    mode: int
    uid: int
    gid: int
    atime: int = 0
    mtime: int = 0
    ctime: int = 0

    def __post_init__(self) -> None:
        if self.mode & ~MODE_MASK:
            raise ValueError(f"mode 0o{self.mode:o} has non-permission bits")

    def with_mode(self, mode: int) -> "Meta":
        return dataclasses.replace(self, mode=mode & MODE_MASK)

    def with_owner(self, uid: int, gid: int) -> "Meta":
        return dataclasses.replace(self, uid=uid, gid=gid)

    def touched(self, *, atime: int | None = None, mtime: int | None = None,
                ctime: int | None = None) -> "Meta":
        """Return metadata with the given timestamps updated."""
        return dataclasses.replace(
            self,
            atime=self.atime if atime is None else atime,
            mtime=self.mtime if mtime is None else mtime,
            ctime=self.ctime if ctime is None else ctime,
        )
