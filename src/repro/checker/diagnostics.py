"""Rendering of checked traces (paper Fig. 4).

For conformant steps the checked trace resembles the original; for
non-conformant steps an error comment block names the observed and
allowed results and notes that checking continued.
"""

from __future__ import annotations

from typing import Dict, List

from repro.checker.checker import CheckedTrace
from repro.core.labels import (OsCall, OsCreate, OsDestroy, OsReturn,
                               OsSignal, OsSpin)


def render_checked_trace(checked: CheckedTrace) -> str:
    """Render a checked trace in the format of paper Fig. 4."""
    by_line: Dict[int, List] = {}
    for dev in checked.deviations:
        by_line.setdefault(dev.line_no, []).append(dev)

    lines: List[str] = ["@type trace", f"# Test {checked.trace.name}"]
    for event in checked.trace.events:
        label = event.label
        if isinstance(label, OsCreate):
            lines.append(f"@process create p{label.pid} uid={label.uid} "
                         f"gid={label.gid}")
        elif isinstance(label, OsDestroy):
            lines.append(f"@process destroy p{label.pid}")
        elif isinstance(label, OsCall):
            prefix = f"p{label.pid}: " if label.pid != 1 else ""
            lines.append(f"{event.line_no}: {prefix}{label.cmd.render()}")
        elif isinstance(label, OsReturn):
            prefix = f"p{label.pid}: " if label.pid != 1 else ""
            lines.append(prefix + label.ret.render())
        elif isinstance(label, (OsSignal, OsSpin)):
            lines.append(label.render())
        for dev in by_line.get(event.line_no, []):
            lines.append(f"# Error: {dev.line_no}: {dev.observed}")
            lines.append(f"# {dev.message}")
            if dev.allowed:
                allowed = ", ".join(dev.allowed)
                lines.append(f"# allowed are only: {allowed}")
                lines.append(f"# continuing with {allowed}")
            else:
                lines.append("# continuing")
    status = "accepted" if checked.accepted else \
        f"REJECTED ({len(checked.deviations)} deviation(s))"
    lines.append(f"# Check result: {status}")
    return "\n".join(lines) + "\n"
