"""State-set trace checking.

The core loop (paper section 5): maintain a finite set ``S_i`` of model
states; for each label apply ``os_trans`` to every element and union the
results.  A non-empty final set means the trace is accepted.  Internal
tau transitions (a pending call taking effect) are explored by taking the
tau closure before matching each return — this is what copes with both
result nondeterminism and concurrent in-flight calls without any
backtracking search (the six-orders-of-magnitude point of section 3).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Tuple

from repro.core.labels import (OsCall, OsCreate, OsDestroy, OsLabel,
                               OsReturn, OsSignal, OsSpin)
from repro.core.platform import PlatformSpec
from repro.core.values import render_return
from repro.engine import (CompiledAutomaton, InternTable,
                          TransitionMemo, recover_states)
from repro.osapi.os_state import OsStateOrSpecial, initial_os_state
from repro.osapi.transition import allowed_returns, os_trans, tau_closure
from repro.script.ast import Trace


@dataclasses.dataclass(frozen=True)
class Deviation:
    """One non-conformant step of a checked trace."""

    line_no: int
    kind: str  # "return-mismatch" | "signal" | "spin" | "structural"
    observed: str
    allowed: Tuple[str, ...]
    message: str


def implicit_creates(trace: Trace, default_uid: int = 0,
                     default_gid: int = 0) -> List[OsCreate]:
    """CREATE labels for pids the trace uses but never creates.

    The paper's checking flag for "whether the initial process runs
    with root privileges or not": processes a trace uses without an
    explicit ``@process create`` line are created up front with the
    given default credentials.  Shared by :class:`TraceChecker` and the
    vectored oracle engine so the rule cannot desynchronize.
    """
    created: set = set()
    implicit: List[OsCreate] = []
    for event in trace.events:
        label = event.label
        if isinstance(label, OsCreate):
            created.add(label.pid)
        elif isinstance(label, (OsCall, OsReturn, OsSignal, OsSpin)):
            if label.pid not in created:
                created.add(label.pid)
                implicit.append(OsCreate(label.pid, default_uid,
                                         default_gid))
    return implicit


@dataclasses.dataclass(frozen=True)
class CheckedTrace:
    """The result of checking one trace against the model."""

    trace: Trace
    deviations: Tuple[Deviation, ...]
    #: Peak size of the state set, tracked at *every* step — each label
    #: application and each tau closure — not only at returns, so peaks
    #: reached between RETURN labels (e.g. sets carried through CALL /
    #: CREATE labels after a deviation recovery) are reported too.
    max_state_set: int
    labels_checked: int
    #: True if the state set ever exceeded the checker's bound and was
    #: pruned (possible only after a deviation; see TraceChecker).
    pruned: bool = False

    @property
    def accepted(self) -> bool:
        return not self.deviations


class TraceChecker:
    """Checks traces against one variant of the model.

    .. deprecated::
        New code should check through :mod:`repro.oracle`
        (``get_oracle("linux").check(trace)``), which adds prefix
        memoization, one-pass multi-platform checking and the common
        :class:`~repro.oracle.Verdict` surface.  This class keeps its
        own body — layering forbids ``repro.checker`` importing
        ``repro.oracle`` — and the oracle engine's single-platform
        parity with it is test-enforced.

    ``groups`` optionally pre-populates the model's group table, matching
    the checking flags the paper mentions (e.g. whether the initial
    process runs with root privileges is determined by the trace's
    ``@process create`` line).
    """

    #: Bound on the state set carried *between* labels.  On a
    #: conformant trace the set stays small by construction
    #: (nondeterminism is resolved by the next label); it can grow
    #: without bound after a deviation, when recovery keeps every
    #: pending alternative — e.g. all partial-write lengths.  Past the
    #: bound the checker prunes deterministically and flags the trace
    #: via ``CheckedTrace.pruned`` (best-effort continuation).  The
    #: transient set between a call and its return is not pruned.
    DEFAULT_MAX_STATES = 64

    #: ``intern="compiled"``: checks through the Python loop before the
    #: first freeze (the memo must be warm for the tables to hold
    #: anything), and re-freezes after this many fast-path misses.
    COMPILE_AFTER = 8
    RECOMPILE_MISSES = 32

    def __init__(self, spec: PlatformSpec, groups: dict | None = None,
                 max_states: int = DEFAULT_MAX_STATES,
                 default_uid: int = 0, default_gid: int = 0,
                 intern: bool | str = True):
        self.spec = spec
        self.groups = groups or {}
        self.max_states = max_states
        #: Credentials assumed for processes a trace uses without an
        #: explicit ``@process create`` line — the paper's checking
        #: flag for "whether the initial process runs with root
        #: privileges or not".
        self.default_uid = default_uid
        self.default_gid = default_gid
        #: ``intern=True`` (the default) explores over the
        #: :mod:`repro.engine` interned engine: states are hash-consed
        #: into ids and transitions/tau closures are memoized for the
        #: checker's lifetime, so repeated prefixes across the traces
        #: one checker sees are derived once.  ``intern=False`` keeps
        #: the original frozenset-of-states loop — the baseline the
        #: parity property tests and ``bench_engine_intern`` compare
        #: against (results are bit-for-bit identical either way).
        #: Long-lived interned checkers keep their memo warm across
        #: ``check`` calls; per-trace specification-clause coverage
        #: therefore must use fresh instances (as the coverage path's
        #: uncached oracles already do).
        #: ``intern="compiled"`` additionally fronts the interned loop
        #: with a frozen int-table fast path
        #: (:mod:`repro.engine.compiled`): after :data:`COMPILE_AFTER`
        #: checks the warm memo is compiled into a
        #: :class:`~repro.engine.compiled.CompiledAutomaton`, and clean
        #: traces over known states walk dense tables instead of the
        #: Python loop.  Any complication (unseen label/state,
        #: deviation, pruning) falls back to :meth:`_check_interned`
        #: with identical results, counted in ``compiled_misses``.
        self.compiled = (intern == "compiled")
        self.intern = bool(intern)
        if self.intern:
            self._table = InternTable()
            self._memo = TransitionMemo(spec, self._table)
        if self.compiled:
            self.compiled_hits = 0
            self.compiled_misses = 0
            self._checks = 0
            self._misses_at_compile = 0
            self._automaton = None
            self._init_sid = None

    def _implicit_creates(self, trace: Trace) -> List[OsCreate]:
        """CREATE labels for pids the trace uses but never creates."""
        return implicit_creates(trace, self.default_uid,
                                self.default_gid)

    def check(self, trace: Trace) -> CheckedTrace:
        if self.compiled:
            checked = self._check_compiled(trace)
            if checked is not None:
                return checked
        if self.intern:
            return self._check_interned(trace)
        return self._check_uninterned(trace)

    def _check_compiled(self, trace: Trace) -> Optional[CheckedTrace]:
        """The compiled fast path; None hands the trace to the exact
        interned loop (which also warms the memo for the next freeze)."""
        self._checks += 1
        automaton = self._automaton
        if automaton is None:
            if self._checks <= self.COMPILE_AFTER:
                return None
            automaton = self._compile_automaton()
        elif (self.compiled_misses - self._misses_at_compile
              >= self.RECOMPILE_MISSES):
            automaton = self._compile_automaton()
        init_sid = self._init_sid
        if init_sid is None:
            # One intern per checker: self._table never changes, so
            # the initial state's id is a constant worth caching.
            init_sid = self._table.intern(initial_os_state(self.groups))
            self._init_sid = init_sid
        labels = [event.label for event in trace.events]
        maxs = automaton.walker().walk(
            self._implicit_creates(trace), labels, init_sid,
            self.max_states)
        if maxs is None:
            self.compiled_misses += 1
            return None
        self.compiled_hits += 1
        return CheckedTrace(trace=trace, deviations=(),
                            max_state_set=maxs[0],
                            labels_checked=len(labels), pruned=False)

    def _compile_automaton(self):
        automaton = CompiledAutomaton.compile(self._table,
                                              (self._memo,))
        if self._automaton is not None:
            # Same table, wider rows: keep the warmed walker memos.
            automaton.adopt_walker(self._automaton)
        self._automaton = automaton
        self._misses_at_compile = self.compiled_misses
        return self._automaton

    def _check_interned(self, trace: Trace) -> CheckedTrace:
        """The interned engine loop: ids in, ids out.

        Mirrors :meth:`_check_uninterned` step for step (the randomized
        parity test holds the two to identical results); the state set
        is a frozenset of :class:`~repro.engine.InternTable` ids and
        every transition goes through the memo.
        """
        memo = self._memo
        table = self._table
        ids: FrozenSet[int] = frozenset(
            {table.intern(initial_os_state(self.groups))})
        max_states = 1
        for create in self._implicit_creates(trace):
            ids = memo.apply(ids, create)
            max_states = max(max_states, len(ids))
        deviations: List[Deviation] = []
        labels = 0
        pruned = False

        for event in trace.events:
            label = event.label
            labels += 1

            if isinstance(label, (OsSignal, OsSpin)):
                # The model never allows a call to kill or hang a
                # process; these observations are always deviations.
                kind = "signal" if isinstance(label, OsSignal) else "spin"
                deviations.append(Deviation(
                    line_no=event.line_no, kind=kind,
                    observed=label.render(), allowed=(),
                    message=f"process-level misbehaviour: "
                            f"{label.render()}"))
                continue

            if isinstance(label, OsReturn):
                closed = memo.closure(ids)
                max_states = max(max_states, len(closed))
                next_ids = memo.apply(closed, label)
                if next_ids:
                    ids = next_ids
                    max_states = max(max_states, len(ids))
                    if len(ids) > self.max_states:
                        # A conformant trace collapses the set at every
                        # return; exceeding the bound is only plausible
                        # in pathological cases — prune and flag.
                        ids = memo.prune(ids, self.max_states)
                        pruned = True
                    continue
                allowed = allowed_returns(table.states_of(closed),
                                          label.pid)
                allowed_strs = tuple(sorted(
                    render_return(r) for r in allowed))
                deviations.append(Deviation(
                    line_no=event.line_no, kind="return-mismatch",
                    observed=render_return(label.ret),
                    allowed=allowed_strs,
                    message=f"unexpected results: "
                            f"{render_return(label.ret)}"))
                ids = memo.recover(closed, label.pid) or closed
                max_states = max(max_states, len(ids))
                if len(ids) > self.max_states:
                    ids = memo.prune(ids, self.max_states)
                    pruned = True
                continue

            # CALL / CREATE / DESTROY.
            next_ids = memo.apply(ids, label)
            if next_ids:
                ids = next_ids
                max_states = max(max_states, len(ids))
                continue
            deviations.append(Deviation(
                line_no=event.line_no, kind="structural",
                observed=label.render(), allowed=(),
                message=f"label not allowed here: {label.render()}"))

        return CheckedTrace(trace=trace, deviations=tuple(deviations),
                            max_state_set=max_states,
                            labels_checked=labels, pruned=pruned)

    def _check_uninterned(self, trace: Trace) -> CheckedTrace:
        """The original frozenset-of-states loop (``intern=False``)."""
        spec = self.spec
        states: FrozenSet[OsStateOrSpecial] = frozenset(
            {initial_os_state(self.groups)})
        max_states = 1
        for create in self._implicit_creates(trace):
            states = _apply(spec, states, create)
            max_states = max(max_states, len(states))
        deviations: List[Deviation] = []
        labels = 0
        pruned = False

        for event in trace.events:
            label = event.label
            labels += 1

            if isinstance(label, (OsSignal, OsSpin)):
                # The model never allows a call to kill or hang a
                # process; these observations are always deviations.
                kind = "signal" if isinstance(label, OsSignal) else "spin"
                deviations.append(Deviation(
                    line_no=event.line_no, kind=kind,
                    observed=label.render(), allowed=(),
                    message=f"process-level misbehaviour: "
                            f"{label.render()}"))
                continue

            if isinstance(label, OsReturn):
                closed = tau_closure(spec, states)
                max_states = max(max_states, len(closed))
                next_states = _apply(spec, closed, label)
                if next_states:
                    states = next_states
                    max_states = max(max_states, len(states))
                    if len(states) > self.max_states:
                        # A conformant trace collapses the set at every
                        # return; exceeding the bound is only plausible
                        # in pathological cases — prune and flag.
                        states = _prune(states, self.max_states)
                        pruned = True
                    continue
                allowed = allowed_returns(closed, label.pid)
                allowed_strs = tuple(sorted(
                    render_return(r) for r in allowed))
                deviations.append(Deviation(
                    line_no=event.line_no, kind="return-mismatch",
                    observed=render_return(label.ret),
                    allowed=allowed_strs,
                    message=f"unexpected results: "
                            f"{render_return(label.ret)}"))
                states = _recover(closed, label.pid) or closed
                max_states = max(max_states, len(states))
                if len(states) > self.max_states:
                    states = _prune(states, self.max_states)
                    pruned = True
                continue

            # CALL / CREATE / DESTROY.
            next_states = _apply(spec, states, label)
            if next_states:
                states = next_states
                max_states = max(max_states, len(states))
                continue
            deviations.append(Deviation(
                line_no=event.line_no, kind="structural",
                observed=label.render(), allowed=(),
                message=f"label not allowed here: {label.render()}"))

        return CheckedTrace(trace=trace, deviations=tuple(deviations),
                            max_state_set=max_states,
                            labels_checked=labels, pruned=pruned)


def _prune(states: FrozenSet[OsStateOrSpecial],
           limit: int) -> FrozenSet[OsStateOrSpecial]:
    """Deterministically keep ``limit`` states (best-effort mode).

    The key is the rendered representation, which is stable across
    processes (object hashes are randomised per interpreter and would
    make serial and parallel checking disagree).
    """
    return frozenset(sorted(states, key=repr)[:limit])


def _apply(spec: PlatformSpec, states: FrozenSet[OsStateOrSpecial],
           label: OsLabel) -> FrozenSet[OsStateOrSpecial]:
    out: set[OsStateOrSpecial] = set()
    for state in states:
        out |= os_trans(spec, state, label)
    return frozenset(out)


def _recover(states: FrozenSet[OsStateOrSpecial],
             pid: int) -> Optional[FrozenSet[OsStateOrSpecial]]:
    """Continue after a failed return match.

    The canonical body lives in :func:`repro.engine.recover_states`
    (one definition shared with the interned engine); this wrapper
    keeps the checker-local name importers rely on.
    """
    return recover_states(states, pid)


def check_trace(spec: PlatformSpec, trace: Trace,
                groups: dict | None = None) -> CheckedTrace:
    """Convenience one-shot trace check."""
    return TraceChecker(spec, groups).check(trace)
