"""The trace checker: SibylFS's test-oracle mode.

Steps a *set* of model states through a trace of labels; an empty set at
any step means the observed behaviour is outside the model's envelope.
On a non-conformant step the checker emits a diagnostic naming the
allowed return values and continues checking under the assumption that
one of them occurred (paper Fig. 4).
"""

from repro.checker.checker import (CheckedTrace, Deviation, TraceChecker,
                                   check_trace)
from repro.checker.diagnostics import render_checked_trace

__all__ = ["CheckedTrace", "Deviation", "TraceChecker", "check_trace",
           "render_checked_trace"]
