"""Test executor: drives a file system under test with a script and
records the observed trace (paper section 6.2).  Also provides
:class:`RecordingFS` for recording traces from application-style code
(paper section 9).
"""

from repro.executor.executor import execute_script
from repro.executor.recorder import RecordingFS

__all__ = ["execute_script", "RecordingFS"]
