"""Script execution against a file system under test.

The paper's executor forks an interpreter per script and dispatches
commands to worker processes in a chroot jail, each running with the
generated credentials of the scripted process (section 6.2).  Here the
system under test is an in-process :class:`~repro.fsimpl.kernel.KernelFS`
(see DESIGN.md's substitution note), so "execution" is a direct
interpretation loop — but the observable artefact is the same: a trace
interleaving the script's commands with the returns the implementation
produced, including the process-level ``!signal`` and ``!spin``
observations for the section 7.3.4-7.3.5 defects.
"""

from __future__ import annotations

from typing import List

from repro.core.labels import (OsCall, OsCreate, OsDestroy, OsReturn,
                               OsSignal, OsSpin)
from repro.fsimpl.kernel import KernelFS, SignalKill, SpinHang
from repro.fsimpl.quirks import Quirks
from repro.script.ast import (CreateEvent, DestroyEvent, Script, ScriptStep,
                              Trace, TraceEvent)


def execute_script(quirks: Quirks, script: Script,
                   default_uid: int = 0, default_gid: int = 0) -> Trace:
    """Run ``script`` on a fresh instance of the given configuration.

    Each script starts from an empty file system (the chroot-jail
    analogue).  Process 1 is created implicitly with ``default_uid`` /
    ``default_gid`` unless the script creates it explicitly.  A killed or
    spinning process terminates the script, mirroring the paper's
    fault-isolated interpreter.
    """
    kernel = KernelFS(quirks)
    events: List[TraceEvent] = []
    line_no = 0

    def emit(label) -> None:
        nonlocal line_no
        line_no += 1
        events.append(TraceEvent(line_no, label))

    for item in script.items:
        if isinstance(item, CreateEvent):
            kernel.create_process(item.pid, item.uid, item.gid)
            emit(OsCreate(item.pid, item.uid, item.gid))
            continue
        if isinstance(item, DestroyEvent):
            if kernel.process_alive(item.pid):
                kernel.destroy_process(item.pid)
                emit(OsDestroy(item.pid))
            continue
        assert isinstance(item, ScriptStep)
        if not kernel.process_alive(item.pid):
            if item.pid in kernel.state.procs:
                # Killed or spinning: the worker is gone; skip its
                # remaining commands (the interpreter isolates the fault).
                continue
            kernel.create_process(item.pid, default_uid, default_gid)
            emit(OsCreate(item.pid, default_uid, default_gid))
        emit(OsCall(item.pid, item.cmd))
        try:
            ret = kernel.call(item.pid, item.cmd)
        except SignalKill as sig:
            emit(OsSignal(item.pid, sig.signal))
            continue
        except SpinHang:
            emit(OsSpin(item.pid))
            continue
        emit(OsReturn(item.pid, ret))

    return Trace(name=script.name, events=tuple(events))
