"""Trace recording for applications (paper section 9).

"SibylFS could support analysis of API traces of applications" — this
module provides the recording half: :class:`RecordingFS` exposes the
same friendly API as :class:`~repro.fsimpl.modelfs.ReferenceFS`, but
runs against any configuration and records every call/return (including
signals and spins) as a :class:`~repro.script.ast.Trace`.  The recorded
trace feeds directly into the checker, the portability analyser, or the
test-case reducer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import commands as C
from repro.core.flags import OpenFlag, SeekWhence
from repro.core.labels import (OsCall, OsCreate, OsReturn, OsSignal,
                               OsSpin)
from repro.core.values import (Err, Ok, ReturnValue, RvBytes, RvDirEntry,
                               RvNum, RvStat, Stat)
from repro.fsimpl.kernel import KernelFS, SignalKill, SpinHang
from repro.fsimpl.modelfs import FsError
from repro.fsimpl.quirks import Quirks
from repro.script.ast import Trace, TraceEvent


class RecordingFS:
    """A file-system facade that records everything it is asked to do.

    Unlike :class:`ReferenceFS` the backend is an arbitrary (possibly
    defective) configuration; failed calls raise :class:`FsError`, and
    the process-level defects raise :class:`SignalKill` /
    :class:`SpinHang` — all of which still appear in the trace.
    """

    def __init__(self, quirks: Quirks, uid: int = 0, gid: int = 0,
                 name: str = "recorded"):
        self._kernel = KernelFS(quirks)
        self._pid = 1
        self._events: List[TraceEvent] = []
        self._line = 0
        self._name = name
        self._kernel.create_process(self._pid, uid, gid)
        self._emit(OsCreate(self._pid, uid, gid))

    # -- recording plumbing ---------------------------------------------------
    def _emit(self, label) -> None:
        self._line += 1
        self._events.append(TraceEvent(self._line, label))

    def _call(self, cmd: C.OsCommand) -> ReturnValue:
        self._emit(OsCall(self._pid, cmd))
        try:
            ret = self._kernel.call(self._pid, cmd)
        except SignalKill as sig:
            self._emit(OsSignal(self._pid, sig.signal))
            raise
        except SpinHang:
            self._emit(OsSpin(self._pid))
            raise
        self._emit(OsReturn(self._pid, ret))
        if isinstance(ret, Err):
            raise FsError(ret.errno, cmd.render())
        return ret

    def trace(self) -> Trace:
        """The trace recorded so far."""
        return Trace(name=self._name, events=tuple(self._events))

    # -- the API (mirrors ReferenceFS) -----------------------------------------
    def mkdir(self, path: str, mode: int = 0o777) -> None:
        self._call(C.Mkdir(path, mode))

    def rmdir(self, path: str) -> None:
        self._call(C.Rmdir(path))

    def unlink(self, path: str) -> None:
        self._call(C.Unlink(path))

    def link(self, src: str, dst: str) -> None:
        self._call(C.Link(src, dst))

    def rename(self, src: str, dst: str) -> None:
        self._call(C.Rename(src, dst))

    def symlink(self, target: str, linkpath: str) -> None:
        self._call(C.Symlink(target, linkpath))

    def readlink(self, path: str) -> str:
        ret = self._call(C.Readlink(path))
        return ret.value.data.decode("utf-8")

    def chdir(self, path: str) -> None:
        self._call(C.Chdir(path))

    def chmod(self, path: str, mode: int) -> None:
        self._call(C.Chmod(path, mode))

    def chown(self, path: str, uid: int, gid: int) -> None:
        self._call(C.Chown(path, uid, gid))

    def umask(self, mask: int) -> int:
        return self._call(C.Umask(mask)).value.value

    def truncate(self, path: str, length: int) -> None:
        self._call(C.Truncate(path, length))

    def stat(self, path: str) -> Stat:
        return self._call(C.StatCmd(path)).value.stat

    def lstat(self, path: str) -> Stat:
        return self._call(C.LstatCmd(path)).value.stat

    def open(self, path: str, flags: OpenFlag = OpenFlag.O_RDONLY,
             mode: int = 0o666) -> int:
        return self._call(C.Open(path, flags, mode)).value.value

    def close(self, fd: int) -> None:
        self._call(C.Close(fd))

    def read(self, fd: int, count: int) -> bytes:
        return self._call(C.Read(fd, count)).value.data

    def write(self, fd: int, data: bytes) -> int:
        return self._call(C.Write(fd, data)).value.value

    def pread(self, fd: int, count: int, offset: int) -> bytes:
        return self._call(C.Pread(fd, count, offset)).value.data

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return self._call(C.Pwrite(fd, data, offset)).value.value

    def lseek(self, fd: int, offset: int,
              whence: SeekWhence = SeekWhence.SEEK_SET) -> int:
        return self._call(C.Lseek(fd, offset, whence)).value.value

    def opendir(self, path: str) -> int:
        return self._call(C.Opendir(path)).value.value

    def readdir(self, dh: int) -> Optional[str]:
        return self._call(C.Readdir(dh)).value.name

    def rewinddir(self, dh: int) -> None:
        self._call(C.Rewinddir(dh))

    def closedir(self, dh: int) -> None:
        self._call(C.Closedir(dh))
