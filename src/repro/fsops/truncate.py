"""Specification of ``truncate``."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.core.flags import FileKind
from repro.fsops.common import (FsEnv, may_write_file, touch_file_mtime)
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.truncate.resolution_error")
declare("fsop.truncate.noent")
declare("fsop.truncate.is_dir")
# Documentation clause: truncate resolves with FOLLOW, so its resolved
# name is never a symlink object (a dangling final symlink resolves to
# RnNone).  Annotated unreachable, kept for exhaustiveness.
declare("fsop.truncate.is_symlink", reachable=False)
declare("fsop.truncate.negative_length")
declare("fsop.truncate.no_write_permission")
declare("fsop.truncate.success")


def fsop_truncate(env: FsEnv, fs: FsState, rn: ResName,
                  length: int) -> Outcomes:
    """``truncate`` sets a regular file's length (zero-extending growth).

    Resolution follows a final symlink, so an :class:`RnFile` that is
    still a symlink object can only arise from a nofollow quirk and is
    rejected.
    """

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.truncate.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnNone):
            cover("fsop.truncate.noent")
            return fails(Errno.ENOENT)
        if isinstance(rn, RnDir):
            cover("fsop.truncate.is_dir")
            return fails(Errno.EISDIR)
        assert isinstance(rn, RnFile)
        if rn.trailing_slash:
            return fails(Errno.ENOTDIR)
        if fs.file(rn.fref).kind is FileKind.SYMLINK:
            cover("fsop.truncate.is_symlink")
            return fails(Errno.EINVAL)
        return PASS

    def check_length():
        if length < 0:
            cover("fsop.truncate.negative_length")
            return fails(Errno.EINVAL)
        return PASS

    def check_perms():
        if isinstance(rn, RnFile) and not may_write_file(env, fs, rn.fref):
            cover("fsop.truncate.no_write_permission")
            return fails(Errno.EACCES)
        return PASS

    result = parallel(check_target, check_length, check_perms)

    def success() -> Outcomes:
        assert isinstance(rn, RnFile)
        cover("fsop.truncate.success")
        fs1 = fs.truncate_file(rn.fref, length)
        fs1 = touch_file_mtime(env, fs1, rn.fref)
        return ok(fs1)

    return guarded(fs, result, success)
