"""Directory-handle semantics: ``opendir`` / ``readdir`` / ``rewinddir``.

This is the hand-crafted nondeterminism specification of paper section 3
("Directory listing nondeterminism").  A directory handle tracks:

* ``must`` — entries that *must* still be returned (present and
  unmodified since the handle was opened, not yet returned);
* ``may`` — entries that *may* be returned (added after opening, or
  deleted before being returned, including delete-then-re-add);
* ``returned`` — entries already yielded, which must not repeat unless
  re-added;
* ``seen`` — the directory contents as of the last access, from which the
  next access computes the changes.

The sets are *maintained* rather than recomputed: each ``readdir`` access
first folds in the changes since the last access, then splits
nondeterministically over every allowed answer.  The nondeterminism is
resolved one step later, when the trace label reveals the entry actually
read — which is why this stays efficiently checkable.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Tuple

from repro.core.coverage import cover, declare
from repro.core.values import RvDirEntry
from repro.state.heap import DirRef, FsState

declare("dirops.open")
declare("dirops.update_added")
declare("dirops.update_removed_unreturned")
declare("dirops.update_removed_returned")
declare("dirops.readdir_must")
declare("dirops.readdir_may")
declare("dirops.readdir_end")
declare("dirops.rewind")


@dataclasses.dataclass(frozen=True)
class DhState:
    """The state of one open directory handle."""

    dref: DirRef
    must: FrozenSet[str]
    may: FrozenSet[str]
    returned: FrozenSet[str]
    seen: FrozenSet[str]


def dh_open(fs: FsState, dref: DirRef) -> DhState:
    """A fresh handle: everything currently present must be returned."""
    cover("dirops.open")
    entries = frozenset(fs.entry_names(dref))
    return DhState(dref=dref, must=entries, may=frozenset(),
                   returned=frozenset(), seen=entries)


def dh_update(fs: FsState, dh: DhState) -> DhState:
    """Fold in directory changes since the handle's last access.

    * added entries (including re-adds of returned names) become *may*
      and are allowed to be returned (again);
    * removed entries that were still owed move from *must* to *may*
      (POSIX: a deleted entry not yet returned may still appear);
    * removed entries already returned simply stay returned.
    """
    current = frozenset(fs.entry_names(dh.dref))
    added = current - dh.seen
    removed = dh.seen - current
    must = dh.must
    may = dh.may
    returned = dh.returned
    if added:
        cover("dirops.update_added")
        may = may | (added - must)
        returned = returned - added
    for name in removed:
        if name in must:
            cover("dirops.update_removed_unreturned")
            must = must - {name}
            may = may | {name}
        elif name in returned:
            cover("dirops.update_removed_returned")
    return dataclasses.replace(dh, must=must, may=may, returned=returned,
                               seen=current)


def dh_readdir_outcomes(fs: FsState,
                        dh: DhState) -> FrozenSet[Tuple[DhState,
                                                        RvDirEntry]]:
    """All allowed answers of one ``readdir`` call on ``dh``.

    Returns pairs of (successor handle state, returned entry).  End of
    directory is allowed exactly when nothing *must* still be returned.
    """
    dh = dh_update(fs, dh)
    outcomes: set[Tuple[DhState, RvDirEntry]] = set()
    for name in dh.must:
        cover("dirops.readdir_must")
        succ = dataclasses.replace(
            dh, must=dh.must - {name}, may=dh.may - {name},
            returned=dh.returned | {name})
        outcomes.add((succ, RvDirEntry(name)))
    for name in dh.may - dh.must:
        cover("dirops.readdir_may")
        succ = dataclasses.replace(
            dh, may=dh.may - {name}, returned=dh.returned | {name})
        outcomes.add((succ, RvDirEntry(name)))
    if not dh.must:
        cover("dirops.readdir_end")
        outcomes.add((dh, RvDirEntry(None)))
    return frozenset(outcomes)


def dh_rewind(fs: FsState, dh: DhState) -> DhState:
    """``rewinddir``: reset the handle as if freshly opened."""
    cover("dirops.rewind")
    return dh_open(fs, dh.dref)
