"""Specification of ``mkdir``."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.fsops.common import (FsEnv, check_parent_writable,
                                check_resolution, touch_mtime)
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.mkdir.resolution_error")
declare("fsop.mkdir.exists_dir")
declare("fsop.mkdir.exists_file")
declare("fsop.mkdir.exists_file_trailing_slash")
declare("fsop.mkdir.parent_not_writable")
declare("fsop.mkdir.success")


def fsop_mkdir(env: FsEnv, fs: FsState, rn: ResName, mode: int) -> Outcomes:
    """``mkdir`` creates a directory at a nonexistent resolved name.

    ``mkdir`` does not follow a symlink in the final component, so a
    (possibly dangling) symlink at the target resolves to :class:`RnFile`
    and fails with EEXIST.
    """

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.mkdir.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnDir):
            cover("fsop.mkdir.exists_dir")
            return fails(Errno.EEXIST)
        if isinstance(rn, RnFile):
            if rn.trailing_slash:
                # mkdir "f.txt/": both EEXIST and ENOTDIR are observed.
                cover("fsop.mkdir.exists_file_trailing_slash")
                return fails(Errno.EEXIST, Errno.ENOTDIR)
            cover("fsop.mkdir.exists_file")
            return fails(Errno.EEXIST)
        return PASS

    def check_perms():
        if not isinstance(rn, RnNone):
            return PASS
        result = check_parent_writable(env, fs, rn.parent)
        if not result.passes:
            cover("fsop.mkdir.parent_not_writable")
        return result

    result = parallel(check_target, check_perms)

    def success() -> Outcomes:
        assert isinstance(rn, RnNone)
        cover("fsop.mkdir.success")
        meta = env.new_meta(mode, clock=fs.clock)
        fs1, _ = fs.create_dir(rn.parent, rn.name, meta)
        fs1 = touch_mtime(env, fs1, rn.parent)
        return ok(fs1)

    return guarded(fs, result, success)
