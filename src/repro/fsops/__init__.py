"""File-system module: per-command semantics over resolved names.

This is the bulk of the model (the paper's *file system* module, 1 388
lines of Lem).  Each libc command has a specification function that takes
the platform spec, the file-system state and resolved names, and returns
the finite set of allowed outcomes — built with the parallel-checks
combinator of Fig. 6.  Raw path strings never appear here; path
resolution happens in the POSIX API layer.
"""

from repro.fsops.common import FsEnv, stat_of_dir, stat_of_file
from repro.fsops.link import fsop_link
from repro.fsops.mkdir import fsop_mkdir
from repro.fsops.rename import fsop_rename
from repro.fsops.rmdir import fsop_rmdir
from repro.fsops.unlink import fsop_unlink
from repro.fsops.symlink_ops import fsop_readlink, fsop_symlink
from repro.fsops.stat_ops import fsop_lstat, fsop_stat
from repro.fsops.truncate import fsop_truncate
from repro.fsops.attr import fsop_chmod, fsop_chown
from repro.fsops.open_spec import OpenResult, fsop_open
from repro.fsops.dirops import (DhState, dh_open, dh_readdir_outcomes,
                                dh_rewind, dh_update)

__all__ = [
    "FsEnv", "stat_of_dir", "stat_of_file",
    "fsop_link", "fsop_mkdir", "fsop_rename", "fsop_rmdir", "fsop_unlink",
    "fsop_symlink", "fsop_readlink", "fsop_stat", "fsop_lstat",
    "fsop_truncate", "fsop_chmod", "fsop_chown",
    "OpenResult", "fsop_open",
    "DhState", "dh_open", "dh_readdir_outcomes", "dh_rewind", "dh_update",
]
