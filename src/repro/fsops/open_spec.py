"""Specification of ``open`` (path-directed part).

``open`` is the command with the largest generated test population in the
paper because one argument is a flag bitfield (section 6.1).  This module
specifies which object an ``open`` call denotes, whether it is created
and/or truncated, and the allowed errors; allocation of the file
descriptor itself happens in the POSIX API layer.

Resolution policy (performed by the caller):

* ``O_CREAT|O_EXCL`` — NOFOLLOW: a final symlink, dangling or not, must
  fail with EEXIST (FreeBSD's ENOTDIR-and-clobber misbehaviour in the
  O_DIRECTORY case is section 7.3.2's invariant violation);
* ``O_NOFOLLOW`` — NOFOLLOW: a final symlink fails with ELOOP;
* otherwise — FOLLOW.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Optional, Union

from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.core.flags import FileKind, OpenFlag
from repro.fsops.common import (FsEnv, check_parent_writable, may_read_file,
                                may_write_file, may_read_dir)
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import DirRef, FileRef, FsState

declare("fsop.open.resolution_error")
declare("fsop.open.noent_no_creat")
declare("fsop.open.trailing_slash_none")
declare("fsop.open.excl_on_symlink")
declare("fsop.open.excl_dir_on_symlink")
declare("fsop.open.excl_on_dangling_symlink")
declare("fsop.open.nofollow_symlink")
declare("fsop.open.excl_exists")
declare("fsop.open.dir_wants_write")
declare("fsop.open.dir_with_creat")
declare("fsop.open.o_directory_on_file")
declare("fsop.open.o_directory_creat_unspecified")
declare("fsop.open.trailing_slash_file")
declare("fsop.open.read_permission_denied")
declare("fsop.open.write_permission_denied")
declare("fsop.open.dir_read_permission_denied")
declare("fsop.open.parent_not_writable")
declare("fsop.open.success_existing")
declare("fsop.open.success_truncated")
declare("fsop.open.success_created")
declare("fsop.open.success_dir")
declare("fsop.open.rdonly_trunc_loose")


@dataclasses.dataclass(frozen=True)
class OpenResult:
    """One allowed behaviour of an ``open`` call.

    Exactly one of ``err`` / ``special`` / ``target`` is meaningful:
    an error return, undefined behaviour, or an opened object.
    """

    fs: FsState
    target: Optional[Union[FileRef, DirRef]] = None
    err: Optional[Errno] = None
    special: Optional[str] = None
    created: bool = False


OpenResults = FrozenSet[OpenResult]


def _errs(fs: FsState, *errnos: Errno) -> OpenResults:
    return frozenset(OpenResult(fs=fs, err=e) for e in errnos)


def fsop_open(env: FsEnv, fs: FsState, rn: ResName, flags: OpenFlag,
              mode: int) -> OpenResults:
    """All allowed behaviours of ``open`` on a resolved name."""
    creat = bool(flags & OpenFlag.O_CREAT)
    excl = bool(flags & OpenFlag.O_EXCL)
    trunc = bool(flags & OpenFlag.O_TRUNC)
    directory = bool(flags & OpenFlag.O_DIRECTORY)
    nofollow = bool(flags & OpenFlag.O_NOFOLLOW)

    if isinstance(rn, RnError):
        cover("fsop.open.resolution_error")
        return _errs(fs, rn.errno)

    if isinstance(rn, RnNone):
        if rn.dangling_symlink is not None and creat and excl:
            # O_EXCL: the (dangling) symlink itself already exists.
            cover("fsop.open.excl_on_dangling_symlink")
            return _errs(fs, Errno.EEXIST)
        if not creat:
            cover("fsop.open.noent_no_creat")
            return _errs(fs, Errno.ENOENT)
        if rn.trailing_slash:
            cover("fsop.open.trailing_slash_none")
            return _errs(fs, Errno.EISDIR, Errno.ENOENT)
        if directory:
            # O_CREAT|O_DIRECTORY on a nonexistent name is a known wart:
            # Linux creates a regular file; POSIX gives no coherent
            # reading.  The model calls it unspecified.
            cover("fsop.open.o_directory_creat_unspecified")
            return frozenset({OpenResult(
                fs=fs, special="unspecified",
            )})
        perm = check_parent_writable(env, fs, rn.parent)
        if not perm.passes:
            cover("fsop.open.parent_not_writable")
            return _errs(fs, *perm.mandatory)
        cover("fsop.open.success_created")
        meta = env.new_meta(mode, clock=fs.clock)
        fs1, fref = fs.create_file(rn.parent, rn.name, meta)
        return frozenset({OpenResult(fs=fs1, target=fref, created=True)})

    if isinstance(rn, RnDir):
        if creat and excl:
            cover("fsop.open.excl_exists")
            return _errs(fs, Errno.EEXIST)
        if flags.wants_write or trunc:
            cover("fsop.open.dir_wants_write")
            return _errs(fs, Errno.EISDIR)
        if creat:
            cover("fsop.open.dir_with_creat")
            return _errs(fs, Errno.EISDIR)
        if env.spec.permissions_enabled and not may_read_dir(env, fs,
                                                             rn.dref):
            cover("fsop.open.dir_read_permission_denied")
            return _errs(fs, Errno.EACCES)
        cover("fsop.open.success_dir")
        return frozenset({OpenResult(fs=fs, target=rn.dref)})

    assert isinstance(rn, RnFile)
    fobj = fs.file(rn.fref)

    if fobj.kind is FileKind.SYMLINK:
        # Reachable only under a NOFOLLOW policy (O_NOFOLLOW or
        # O_CREAT|O_EXCL): a plain FOLLOW resolution never yields a
        # symlink object.
        if creat and excl:
            if directory:
                cover("fsop.open.excl_dir_on_symlink")
                return _errs(fs, *env.spec.open_excl_dir_symlink_errors)
            cover("fsop.open.excl_on_symlink")
            return _errs(fs, Errno.EEXIST)
        cover("fsop.open.nofollow_symlink")
        return _errs(fs, Errno.ELOOP)

    if rn.trailing_slash:
        cover("fsop.open.trailing_slash_file")
        return _errs(fs, Errno.ENOTDIR)
    if directory:
        cover("fsop.open.o_directory_on_file")
        return _errs(fs, Errno.ENOTDIR)
    if creat and excl:
        cover("fsop.open.excl_exists")
        return _errs(fs, Errno.EEXIST)

    if env.spec.permissions_enabled:
        if flags.wants_read and not may_read_file(env, fs, rn.fref):
            cover("fsop.open.read_permission_denied")
            return _errs(fs, Errno.EACCES)
        if ((flags.wants_write or trunc)
                and not may_write_file(env, fs, rn.fref)):
            cover("fsop.open.write_permission_denied")
            return _errs(fs, Errno.EACCES)

    if trunc and flags.wants_write:
        cover("fsop.open.success_truncated")
        fs1 = fs.truncate_file(rn.fref, 0)
        return frozenset({OpenResult(fs=fs1, target=rn.fref)})
    if trunc and not flags.wants_write:
        # O_RDONLY|O_TRUNC is undefined in POSIX; real systems variously
        # truncate or ignore the flag.  The model loosely allows both.
        cover("fsop.open.rdonly_trunc_loose")
        fs1 = fs.truncate_file(rn.fref, 0)
        return frozenset({OpenResult(fs=fs1, target=rn.fref),
                          OpenResult(fs=fs, target=rn.fref)})
    cover("fsop.open.success_existing")
    return frozenset({OpenResult(fs=fs, target=rn.fref)})
