"""Specifications of ``stat`` and ``lstat``."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.core.values import RvStat
from repro.fsops.common import FsEnv, stat_of_dir, stat_of_file
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.stat.resolution_error")
declare("fsop.stat.noent")
declare("fsop.stat.trailing_slash_file")
declare("fsop.stat.success_dir")
declare("fsop.stat.success_file")


def _fsop_stat_like(env: FsEnv, fs: FsState, rn: ResName) -> Outcomes:
    """Common body of stat and lstat — only the resolution policy
    (follow / nofollow) differs, and that is chosen by the caller.
    """

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.stat.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnNone):
            cover("fsop.stat.noent")
            return fails(Errno.ENOENT)
        if isinstance(rn, RnFile) and rn.trailing_slash:
            cover("fsop.stat.trailing_slash_file")
            return fails(Errno.ENOTDIR)
        return PASS

    result = parallel(check_target)

    def success() -> Outcomes:
        if isinstance(rn, RnDir):
            cover("fsop.stat.success_dir")
            return ok(fs, RvStat(stat_of_dir(fs, rn.dref)))
        assert isinstance(rn, RnFile)
        cover("fsop.stat.success_file")
        return ok(fs, RvStat(stat_of_file(fs, rn.fref)))

    return guarded(fs, result, success)


def fsop_stat(env: FsEnv, fs: FsState, rn: ResName) -> Outcomes:
    """``stat``: the name must have been resolved with FOLLOW."""
    return _fsop_stat_like(env, fs, rn)


def fsop_lstat(env: FsEnv, fs: FsState, rn: ResName) -> Outcomes:
    """``lstat``: the name must have been resolved with NOFOLLOW."""
    return _fsop_stat_like(env, fs, rn)
