"""Specifications of ``symlink`` and ``readlink``."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.core.flags import FileKind
from repro.core.values import RvBytes
from repro.fsops.common import FsEnv, check_parent_writable
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.symlink.resolution_error")
declare("fsop.symlink.exists")
declare("fsop.symlink.trailing_slash_none")
declare("fsop.symlink.parent_not_writable")
declare("fsop.symlink.success")
declare("fsop.readlink.resolution_error")
declare("fsop.readlink.noent")
declare("fsop.readlink.not_symlink")
declare("fsop.readlink.is_dir")
declare("fsop.readlink.success")


def fsop_symlink(env: FsEnv, fs: FsState, target: str,
                 rn: ResName) -> Outcomes:
    """``symlink`` creates a symbolic link containing ``target``.

    POSIX leaves symlink permissions implementation-defined; the model
    takes the default mode from the platform spec and optionally applies
    the umask (OS X does, Linux does not — section 7.2's
    "default permissions for symlinks" variation).
    """

    def check_linkpath():
        if isinstance(rn, RnError):
            cover("fsop.symlink.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, (RnDir, RnFile)):
            cover("fsop.symlink.exists")
            return fails(Errno.EEXIST)
        assert isinstance(rn, RnNone)
        if rn.trailing_slash:
            cover("fsop.symlink.trailing_slash_none")
            return fails(Errno.ENOENT, Errno.ENOTDIR)
        return PASS

    def check_perms():
        if not isinstance(rn, RnNone):
            return PASS
        result = check_parent_writable(env, fs, rn.parent)
        if not result.passes:
            cover("fsop.symlink.parent_not_writable")
        return result

    result = parallel(check_linkpath, check_perms)

    def success() -> Outcomes:
        assert isinstance(rn, RnNone)
        cover("fsop.symlink.success")
        mode = env.spec.symlink_default_mode
        meta = env.new_meta(mode, apply_umask=env.spec.symlink_umask_applies,
                            clock=fs.clock)
        fs1, _ = fs.create_file(rn.parent, rn.name, meta,
                                kind=FileKind.SYMLINK,
                                content=target.encode("utf-8"))
        return ok(fs1)

    return guarded(fs, result, success)


def fsop_readlink(env: FsEnv, fs: FsState, rn: ResName) -> Outcomes:
    """``readlink`` returns the contents of a symbolic link.

    The OS X trailing-slash quirk (``readlink s2/`` returning the
    contents of the intermediate symlink, section 7.3.2) is handled in
    the POSIX API layer, which performs the quirky resolution and unions
    the outcomes with these.
    """

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.readlink.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnNone):
            cover("fsop.readlink.noent")
            return fails(Errno.ENOENT)
        if isinstance(rn, RnDir):
            cover("fsop.readlink.is_dir")
            return fails(Errno.EINVAL)
        assert isinstance(rn, RnFile)
        if fs.file(rn.fref).kind is not FileKind.SYMLINK:
            cover("fsop.readlink.not_symlink")
            return fails(Errno.EINVAL)
        return PASS

    result = parallel(check_target)

    def success() -> Outcomes:
        assert isinstance(rn, RnFile)
        cover("fsop.readlink.success")
        return ok(fs, RvBytes(fs.file(rn.fref).content))

    return guarded(fs, result, success)
