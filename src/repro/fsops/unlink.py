"""Specification of ``unlink``."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.fsops.common import (FsEnv, check_parent_writable, touch_mtime)
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.unlink.resolution_error")
declare("fsop.unlink.noent")
declare("fsop.unlink.is_dir")
declare("fsop.unlink.trailing_slash")
declare("fsop.unlink.parent_not_writable")
declare("fsop.unlink.success")


def fsop_unlink(env: FsEnv, fs: FsState, rn: ResName) -> Outcomes:
    """``unlink`` removes a directory entry for a non-directory.

    ``unlink`` never follows a final symlink: it removes the symlink
    itself.  Unlinking a directory is where Linux deliberately deviates
    from POSIX — EISDIR (LSB) instead of EPERM (paper section 7.3.2) —
    captured by ``spec.unlink_dir_errors``.
    """

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.unlink.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnNone):
            cover("fsop.unlink.noent")
            return fails(Errno.ENOENT)
        if isinstance(rn, RnDir):
            cover("fsop.unlink.is_dir")
            return fails(*env.spec.unlink_dir_errors)
        assert isinstance(rn, RnFile)
        if rn.trailing_slash:
            cover("fsop.unlink.trailing_slash")
            return fails(Errno.ENOTDIR)
        return PASS

    def check_perms():
        if not isinstance(rn, RnFile):
            return PASS
        result = check_parent_writable(env, fs, rn.parent)
        if not result.passes:
            cover("fsop.unlink.parent_not_writable")
        return result

    result = parallel(check_target, check_perms)

    def success() -> Outcomes:
        assert isinstance(rn, RnFile)
        cover("fsop.unlink.success")
        fs1 = fs.remove_entry(rn.parent, rn.name)
        fs1 = touch_mtime(env, fs1, rn.parent)
        return ok(fs1)

    return guarded(fs, result, success)
