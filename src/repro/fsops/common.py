"""Shared context and helpers for the per-command specifications."""

from __future__ import annotations

import dataclasses

from repro.core.combinators import CheckResult, PASS, fails
from repro.core.errors import Errno
from repro.core.flags import FileKind, MODE_MASK, R_BITS, W_BITS, X_BITS
from repro.core.platform import PlatformSpec, TimestampMode
from repro.core.values import Stat
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.perms.permissions import PermEnv, has_perm_bits
from repro.state.heap import DirRef, FileRef, FsState
from repro.state.meta import Meta


@dataclasses.dataclass(frozen=True)
class FsEnv:
    """Everything a command specification needs besides the state itself:

    the platform variant, the calling process's credentials, and its file
    creation mask.
    """

    spec: PlatformSpec
    perm: PermEnv
    umask: int = 0o022

    def apply_umask(self, mode: int) -> int:
        return mode & ~self.umask & MODE_MASK

    def new_meta(self, mode: int, *, apply_umask: bool = True,
                 clock: int = 0) -> Meta:
        """Metadata for a newly created object owned by the caller."""
        eff = self.apply_umask(mode) if apply_umask else (mode & MODE_MASK)
        return Meta(mode=eff, uid=self.perm.uid, gid=self.perm.gid,
                    atime=clock, mtime=clock, ctime=clock)


# -- permission checks (the permissions trait) --------------------------------

def may_read_file(env: FsEnv, fs: FsState, fref: FileRef) -> bool:
    return has_perm_bits(env.perm, fs.file(fref).meta, R_BITS)


def may_write_file(env: FsEnv, fs: FsState, fref: FileRef) -> bool:
    return has_perm_bits(env.perm, fs.file(fref).meta, W_BITS)


def may_read_dir(env: FsEnv, fs: FsState, dref: DirRef) -> bool:
    return has_perm_bits(env.perm, fs.dir(dref).meta, R_BITS)


def may_write_dir(env: FsEnv, fs: FsState, dref: DirRef) -> bool:
    return has_perm_bits(env.perm, fs.dir(dref).meta, W_BITS)


def may_search_dir(env: FsEnv, fs: FsState, dref: DirRef) -> bool:
    return has_perm_bits(env.perm, fs.dir(dref).meta, X_BITS)


def check_parent_writable(env: FsEnv, fs: FsState,
                          parent: DirRef) -> CheckResult:
    """Creating or removing an entry needs write+search on the parent."""
    if not may_write_dir(env, fs, parent):
        return fails(Errno.EACCES)
    if not may_search_dir(env, fs, parent):
        return fails(Errno.EACCES)
    return PASS


def check_resolution(rn: ResName) -> CheckResult:
    """Propagate a resolution error as a mandatory failure."""
    if isinstance(rn, RnError):
        return fails(rn.errno)
    return PASS


def check_exists(rn: ResName) -> CheckResult:
    """The path must name an existing object."""
    if isinstance(rn, RnError):
        return fails(rn.errno)
    if isinstance(rn, RnNone):
        return fails(Errno.ENOENT)
    return PASS


def check_file_not_trailing_slash(rn: ResName) -> CheckResult:
    """A non-directory named with a trailing slash is normally ENOTDIR."""
    if isinstance(rn, RnFile) and rn.trailing_slash:
        return fails(Errno.ENOTDIR)
    return PASS


# -- stat construction ---------------------------------------------------------

def stat_of_file(fs: FsState, fref: FileRef) -> Stat:
    f = fs.file(fref)
    return Stat(kind=f.kind, size=len(f.content), nlink=f.nlink,
                uid=f.meta.uid, gid=f.meta.gid, mode=f.meta.mode)


def stat_of_dir(fs: FsState, dref: DirRef) -> Stat:
    d = fs.dir(dref)
    return Stat(kind=FileKind.DIRECTORY, size=0, nlink=fs.dir_nlink(dref),
                uid=d.meta.uid, gid=d.meta.gid, mode=d.meta.mode)


def touch_mtime(env: FsEnv, fs: FsState, dref: DirRef) -> FsState:
    """Timestamps trait: bump a directory's mtime/ctime in immediate mode."""
    if env.spec.timestamps is not TimestampMode.IMMEDIATE:
        return fs
    fs = fs.tick()
    d = fs.dir(dref)
    return fs.set_dir_meta(dref, d.meta.touched(mtime=fs.clock,
                                                ctime=fs.clock))


def touch_file_mtime(env: FsEnv, fs: FsState, fref: FileRef) -> FsState:
    """Timestamps trait: bump a file's mtime/ctime in immediate mode."""
    if env.spec.timestamps is not TimestampMode.IMMEDIATE:
        return fs
    fs = fs.tick()
    f = fs.file(fref)
    return fs.set_file_meta(fref, f.meta.touched(mtime=fs.clock,
                                                 ctime=fs.clock))
