"""Specifications of ``chmod`` and ``chown`` (the permissions trait)."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.core.flags import MODE_MASK
from repro.fsops.common import FsEnv
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.chmod.resolution_error")
declare("fsop.chmod.noent")
declare("fsop.chmod.not_owner")
declare("fsop.chmod.success_dir")
declare("fsop.chmod.success_file")
declare("fsop.chown.resolution_error")
declare("fsop.chown.noent")
declare("fsop.chown.not_permitted")
declare("fsop.chown.success")


def _owner_meta(fs: FsState, rn: ResName):
    if isinstance(rn, RnDir):
        return fs.dir(rn.dref).meta
    assert isinstance(rn, RnFile)
    return fs.file(rn.fref).meta


def fsop_chmod(env: FsEnv, fs: FsState, rn: ResName, mode: int) -> Outcomes:
    """``chmod``: only the owner or the superuser may change the mode."""

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.chmod.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnNone):
            cover("fsop.chmod.noent")
            return fails(Errno.ENOENT)
        if isinstance(rn, RnFile) and rn.trailing_slash:
            return fails(Errno.ENOTDIR)
        return PASS

    def check_owner():
        if not isinstance(rn, (RnDir, RnFile)):
            return PASS
        if not env.perm.enabled or env.perm.is_root:
            return PASS
        if _owner_meta(fs, rn).uid != env.perm.uid:
            cover("fsop.chmod.not_owner")
            return fails(Errno.EPERM)
        return PASS

    result = parallel(check_target, check_owner)

    def success() -> Outcomes:
        if isinstance(rn, RnDir):
            cover("fsop.chmod.success_dir")
            meta = fs.dir(rn.dref).meta.with_mode(mode & MODE_MASK)
            return ok(fs.set_dir_meta(rn.dref, meta))
        assert isinstance(rn, RnFile)
        cover("fsop.chmod.success_file")
        meta = fs.file(rn.fref).meta.with_mode(mode & MODE_MASK)
        return ok(fs.set_file_meta(rn.fref, meta))

    return guarded(fs, result, success)


def fsop_chown(env: FsEnv, fs: FsState, rn: ResName, uid: int,
               gid: int) -> Outcomes:
    """``chown``: the superuser may set any owner; a non-root owner may
    only change the group, and only to a group it belongs to."""

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.chown.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnNone):
            cover("fsop.chown.noent")
            return fails(Errno.ENOENT)
        if isinstance(rn, RnFile) and rn.trailing_slash:
            return fails(Errno.ENOTDIR)
        return PASS

    def check_permitted():
        if not isinstance(rn, (RnDir, RnFile)):
            return PASS
        if not env.perm.enabled or env.perm.is_root:
            return PASS
        meta = _owner_meta(fs, rn)
        owner_keeps_uid = (meta.uid == env.perm.uid
                           and (uid == meta.uid or uid == -1))
        gid_allowed = gid == -1 or gid in env.perm.all_groups()
        if not (owner_keeps_uid and gid_allowed):
            cover("fsop.chown.not_permitted")
            return fails(Errno.EPERM)
        return PASS

    result = parallel(check_target, check_permitted)

    def success() -> Outcomes:
        assert isinstance(rn, (RnDir, RnFile))
        cover("fsop.chown.success")
        meta = _owner_meta(fs, rn)
        new_uid = meta.uid if uid == -1 else uid
        new_gid = meta.gid if gid == -1 else gid
        new_meta = meta.with_owner(new_uid, new_gid)
        if isinstance(rn, RnDir):
            return ok(fs.set_dir_meta(rn.dref, new_meta))
        return ok(fs.set_file_meta(rn.fref, new_meta))

    return guarded(fs, result, success)
