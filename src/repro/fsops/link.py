"""Specification of ``link``."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.core.flags import FileKind
from repro.fsops.common import (FsEnv, check_parent_writable, touch_mtime)
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.link.src_resolution_error")
declare("fsop.link.src_noent")
declare("fsop.link.src_is_dir")
declare("fsop.link.src_trailing_slash")
declare("fsop.link.src_is_symlink")
declare("fsop.link.dst_resolution_error")
declare("fsop.link.dst_exists")
declare("fsop.link.dst_exists_trailing_slash")
declare("fsop.link.dst_is_dir")
declare("fsop.link.dst_trailing_slash_none")
declare("fsop.link.parent_not_writable")
declare("fsop.link.success")


def fsop_link(env: FsEnv, fs: FsState, src: ResName,
              dst: ResName) -> Outcomes:
    """``link`` creates a hard link to an existing file.

    Whether the *source* resolution follows a final symlink is
    implementation-defined (the :class:`LinkSymlinkBehaviour` platform
    switch); the POSIX API layer performs the appropriate resolution(s)
    before calling this function — for the "either" mode it calls once
    per resolution and unions the outcomes.

    The trailing-slash destination quirk of paper section 7.3.2 (Linux
    ``link /dir/ /f.txt/`` returning EEXIST where one might expect
    ENOTDIR) is captured by ``spec.link_trailing_slash_file_errors``.
    """

    def check_src():
        if isinstance(src, RnError):
            cover("fsop.link.src_resolution_error")
            return fails(src.errno)
        if isinstance(src, RnNone):
            cover("fsop.link.src_noent")
            return fails(Errno.ENOENT)
        if isinstance(src, RnDir):
            # Hard links to directories: EPERM on all modelled platforms.
            cover("fsop.link.src_is_dir")
            return fails(Errno.EPERM)
        assert isinstance(src, RnFile)
        if src.trailing_slash:
            cover("fsop.link.src_trailing_slash")
            return fails(Errno.ENOTDIR)
        if fs.file(src.fref).kind is FileKind.SYMLINK:
            cover("fsop.link.src_is_symlink")
        return PASS

    def check_dst():
        if isinstance(dst, RnError):
            cover("fsop.link.dst_resolution_error")
            return fails(dst.errno)
        if isinstance(dst, RnDir):
            cover("fsop.link.dst_is_dir")
            return fails(Errno.EEXIST)
        if isinstance(dst, RnFile):
            if dst.trailing_slash:
                cover("fsop.link.dst_exists_trailing_slash")
                return fails(*env.spec.link_trailing_slash_file_errors)
            cover("fsop.link.dst_exists")
            return fails(Errno.EEXIST)
        assert isinstance(dst, RnNone)
        if dst.trailing_slash:
            # Creating "name/" as a hard link to a file cannot succeed.
            cover("fsop.link.dst_trailing_slash_none")
            return fails(Errno.ENOENT, Errno.ENOTDIR)
        return PASS

    def check_perms():
        if not isinstance(dst, RnNone):
            return PASS
        result = check_parent_writable(env, fs, dst.parent)
        if not result.passes:
            cover("fsop.link.parent_not_writable")
        return result

    result = parallel(check_src, check_dst, check_perms)

    def success() -> Outcomes:
        assert isinstance(src, RnFile) and isinstance(dst, RnNone)
        cover("fsop.link.success")
        fs1 = fs.add_link(dst.parent, dst.name, src.fref)
        fs1 = touch_mtime(env, fs1, dst.parent)
        return ok(fs1)

    return guarded(fs, result, success)
