"""Specification of ``rename`` — the paper's running example (Fig. 6).

The structure mirrors the excerpt in the paper: an initial same-object
test (in which case rename is a no-op), otherwise a *parallel* composition
of independent checks — source/destination shape, root involvement,
subdirectory cycles, parent reachability, permissions — any of whose
errors is an allowed result, with none taking priority.
"""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.fsops.common import (FsEnv, check_parent_writable, touch_mtime)
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.rename.same_object_noop")
declare("fsop.rename.src_resolution_error")
declare("fsop.rename.src_noent")
declare("fsop.rename.src_trailing_slash")
declare("fsop.rename.src_dot")
declare("fsop.rename.dst_resolution_error")
declare("fsop.rename.dst_dot")
declare("fsop.rename.file_onto_dir")
declare("fsop.rename.dir_onto_file")
declare("fsop.rename.dir_onto_nonempty_dir")
declare("fsop.rename.file_onto_trailing_slash_none")
declare("fsop.rename.root_involved")
declare("fsop.rename.into_own_subdir")
declare("fsop.rename.disconnected_parent")
declare("fsop.rename.parent_not_writable")
declare("fsop.rename.success_simple")
declare("fsop.rename.success_replace_file")
declare("fsop.rename.success_replace_empty_dir")


def _same_object(fs: FsState, src: ResName, dst: ResName) -> bool:
    """True if source and destination name the same object.

    POSIX: if the two paths resolve to the same existing file (including
    via distinct hard links), rename does nothing and reports success.
    """
    if isinstance(src, RnFile) and isinstance(dst, RnFile):
        return src.fref == dst.fref
    if isinstance(src, RnDir) and isinstance(dst, RnDir):
        return src.dref == dst.dref
    return False


def fsop_rename(env: FsEnv, fs: FsState, src: ResName,
                dst: ResName) -> Outcomes:
    """``rename`` atomically moves a file or directory."""
    if (not isinstance(src, RnError) and not isinstance(dst, RnError)
            and _same_object(fs, src, dst)):
        # fsm_do_nothing: the no-op case of Fig. 6.
        cover("fsop.rename.same_object_noop")
        return ok(fs)

    def checks_rsrc_rdst():
        # Shape checks on the source/destination combination (the
        # fsop_rename_checks_rsrc_rdst conjunct of Fig. 6).
        if isinstance(src, RnError):
            cover("fsop.rename.src_resolution_error")
            return fails(src.errno)
        if isinstance(src, RnNone):
            cover("fsop.rename.src_noent")
            return fails(Errno.ENOENT)
        if isinstance(src, RnFile) and src.trailing_slash:
            cover("fsop.rename.src_trailing_slash")
            return fails(Errno.ENOTDIR)
        if isinstance(src, RnDir) and src.last_dot is not None:
            cover("fsop.rename.src_dot")
            return fails(Errno.EINVAL, Errno.EBUSY)
        if isinstance(dst, RnError):
            cover("fsop.rename.dst_resolution_error")
            return fails(dst.errno)
        if isinstance(dst, RnDir) and dst.last_dot is not None:
            cover("fsop.rename.dst_dot")
            return fails(Errno.EINVAL, Errno.EBUSY)
        if isinstance(src, RnFile) and isinstance(dst, RnDir):
            # Renaming a file onto a directory: EISDIR; if the directory
            # is non-empty some implementations report that instead.
            cover("fsop.rename.file_onto_dir")
            errs = {Errno.EISDIR}
            if not fs.is_empty_dir(dst.dref):
                errs |= set(env.spec.notempty_errors)
            return fails(*errs)
        if isinstance(src, RnDir) and isinstance(dst, RnFile):
            cover("fsop.rename.dir_onto_file")
            return fails(Errno.ENOTDIR)
        if isinstance(src, RnDir) and isinstance(dst, RnDir):
            if not fs.is_empty_dir(dst.dref):
                # The checked-trace example of paper Fig. 4: renaming an
                # empty directory onto a non-empty one allows EEXIST or
                # ENOTEMPTY (and SSHFS's EPERM is the deviation).
                cover("fsop.rename.dir_onto_nonempty_dir")
                return fails(*env.spec.notempty_errors)
        if (isinstance(src, RnFile) and isinstance(dst, RnNone)
                and dst.trailing_slash):
            cover("fsop.rename.file_onto_trailing_slash_none")
            return fails(Errno.ENOENT, Errno.ENOTDIR)
        return PASS

    def checks_root():
        involved = []
        if isinstance(src, RnDir) and src.dref == fs.root:
            involved.append(src)
        if isinstance(dst, RnDir) and dst.dref == fs.root:
            involved.append(dst)
        if involved:
            cover("fsop.rename.root_involved")
            return fails(*env.spec.rename_root_errors)
        return PASS

    def checks_subdir():
        # A directory must not be renamed into a subdirectory of itself.
        # (The root is excluded: renaming the root has its own check.)
        if isinstance(src, RnDir) and src.dref != fs.root:
            dst_parent = None
            if isinstance(dst, RnNone):
                dst_parent = dst.parent
            elif isinstance(dst, RnDir):
                dst_parent = dst.parent
            if dst_parent is not None and (
                    dst_parent == src.dref
                    or fs.is_ancestor(src.dref, dst_parent)):
                cover("fsop.rename.into_own_subdir")
                return fails(Errno.EINVAL)
        return PASS

    def checks_parentdirs():
        # The parents of source and destination must be reachable; this
        # covers disconnected files/directories (paper Fig. 6 commentary).
        if isinstance(src, RnDir) and src.parent is None \
                and src.dref != fs.root:
            cover("fsop.rename.disconnected_parent")
            return fails(Errno.EINVAL, Errno.EBUSY, Errno.ENOENT)
        return PASS

    def checks_perms():
        results = []
        if isinstance(src, (RnFile, RnDir)) and getattr(
                src, "parent", None) is not None:
            results.append(check_parent_writable(env, fs, src.parent))
        if isinstance(dst, (RnFile, RnDir, RnNone)) and getattr(
                dst, "parent", None) is not None:
            results.append(check_parent_writable(env, fs, dst.parent))
        merged_mandatory = frozenset().union(
            *[r.mandatory for r in results]) if results else frozenset()
        if merged_mandatory:
            cover("fsop.rename.parent_not_writable")
            return fails(*merged_mandatory)
        return PASS

    result = parallel(checks_rsrc_rdst, checks_root, checks_subdir,
                      checks_parentdirs, checks_perms)

    def success() -> Outcomes:
        # Source is a file or directory; destination is none, a file
        # (replace) or an empty directory (replace).
        if isinstance(src, RnFile):
            src_parent, src_name = src.parent, src.name
        else:
            assert isinstance(src, RnDir)
            assert src.parent is not None and src.name is not None
            src_parent, src_name = src.parent, src.name
        if isinstance(dst, RnNone):
            cover("fsop.rename.success_simple")
            dst_parent, dst_name = dst.parent, dst.name
        elif isinstance(dst, RnFile):
            cover("fsop.rename.success_replace_file")
            dst_parent, dst_name = dst.parent, dst.name
        else:
            assert isinstance(dst, RnDir)
            assert dst.parent is not None and dst.name is not None
            cover("fsop.rename.success_replace_empty_dir")
            dst_parent, dst_name = dst.parent, dst.name
        fs1 = fs.move_entry(src_parent, src_name, dst_parent, dst_name)
        fs1 = touch_mtime(env, fs1, src_parent)
        if dst_parent != src_parent:
            fs1 = touch_mtime(env, fs1, dst_parent)
        return ok(fs1)

    return guarded(fs, result, success)
