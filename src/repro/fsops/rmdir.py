"""Specification of ``rmdir``."""

from __future__ import annotations

from repro.core.combinators import (Outcomes, PASS, fails, guarded, ok,
                                    parallel)
from repro.core.coverage import cover, declare
from repro.core.errors import Errno
from repro.fsops.common import (FsEnv, check_parent_writable, touch_mtime)
from repro.pathres.resname import ResName, RnDir, RnError, RnFile, RnNone
from repro.state.heap import FsState

declare("fsop.rmdir.resolution_error")
declare("fsop.rmdir.noent")
declare("fsop.rmdir.not_dir")
declare("fsop.rmdir.root")
declare("fsop.rmdir.dot")
declare("fsop.rmdir.not_empty")
# Documentation clause: a disconnected directory cannot be named by any
# path (it is reachable only through handles and working directories,
# which resolve as "." and are caught by the dot check first), so this
# branch is annotated unreachable — the paper's "explicitly included
# annotated lines covering these cases as a form of documentation".
declare("fsop.rmdir.disconnected", reachable=False)
declare("fsop.rmdir.parent_not_writable")
declare("fsop.rmdir.success")


def fsop_rmdir(env: FsEnv, fs: FsState, rn: ResName) -> Outcomes:
    """``rmdir`` removes an empty directory.

    The removed directory object is *disconnected*, not destroyed: open
    directory handles and working directories that point into it keep a
    referent (the Fig. 8 scenario arises this way).
    """

    def check_target():
        if isinstance(rn, RnError):
            cover("fsop.rmdir.resolution_error")
            return fails(rn.errno)
        if isinstance(rn, RnNone):
            cover("fsop.rmdir.noent")
            return fails(Errno.ENOENT)
        if isinstance(rn, RnFile):
            cover("fsop.rmdir.not_dir")
            return fails(Errno.ENOTDIR)
        assert isinstance(rn, RnDir)
        if rn.dref == fs.root:
            cover("fsop.rmdir.root")
            return fails(*env.spec.rmdir_root_errors)
        if rn.last_dot == ".":
            # rmdir(".") is EINVAL; rmdir("..") fails non-empty / EINVAL.
            cover("fsop.rmdir.dot")
            return fails(Errno.EINVAL)
        if rn.last_dot == "..":
            cover("fsop.rmdir.dot")
            return fails(Errno.EINVAL, *env.spec.notempty_errors)
        if not fs.is_empty_dir(rn.dref):
            cover("fsop.rmdir.not_empty")
            return fails(*env.spec.notempty_errors)
        if rn.parent is None or rn.name is None:
            # A disconnected directory (reachable only via a handle).
            cover("fsop.rmdir.disconnected")
            return fails(Errno.ENOENT, Errno.EINVAL)
        return PASS

    def check_perms():
        if not isinstance(rn, RnDir) or rn.parent is None:
            return PASS
        result = check_parent_writable(env, fs, rn.parent)
        if not result.passes:
            cover("fsop.rmdir.parent_not_writable")
        return result

    result = parallel(check_target, check_perms)

    def success() -> Outcomes:
        assert isinstance(rn, RnDir) and rn.parent is not None
        cover("fsop.rmdir.success")
        fs1 = fs.remove_entry(rn.parent, rn.name)
        fs1 = touch_mtime(env, fs1, rn.parent)
        return ok(fs1)

    return guarded(fs, result, success)
