"""The asyncio front door: ``repro serve``.

A line-delimited JSON protocol over TCP (stdlib ``asyncio`` only — no
framework), one JSON object per line both ways.  Requests carry an
``op`` and an optional client-chosen ``id`` that is echoed on every
response belonging to that request:

==========  ===========================================  =============
op          request fields                               responses
==========  ===========================================  =============
``check``   ``trace`` (trace text)                       one ``verdict``
``batch``   ``traces`` (list of trace texts)             one ``verdict``
                                                         per trace (in
                                                         order), then
                                                         ``batch_done``
                                                         with
                                                         ``engine_stats``
``status``  —                                            ``stats``
``shutdown``  —                                          ``bye``; the
                                                         server stops
==========  ===========================================  =============

A ``verdict`` response is ``{"op": "verdict", "id": ..., "name": ...,
"accepted": bool, "accepted_on": [...], "profiles": [...]}`` where
``profiles`` is the lossless
:meth:`~repro.oracle.ConformanceProfile.to_dict` form — the client can
rebuild the exact per-platform profile objects, which is how the
parity harness checks the served path bit-for-bit against
:class:`~repro.harness.backends.SerialBackend`.  Malformed input gets
``{"op": "error", ...}`` on that line and the connection stays up.

Checking is delegated to a :class:`~repro.service.service
.CheckingService`: ``submit`` runs on the default executor (it may
block on warmup), and each verdict future is awaited with
``asyncio.wrap_future`` so many connections interleave on one loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.service.service import CheckingService


class ServiceServer:
    """One listening socket bound to one :class:`CheckingService`."""

    def __init__(self, service: CheckingService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None

    async def start(self) -> None:
        """Bind and start serving; ``port=0`` picks a free port (the
        bound port is readable from :attr:`port` afterwards)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` request arrives, then unbind."""
        assert self._stopped is not None and self._server is not None
        await self._stopped.wait()
        self._server.close()
        await self._server.wait_closed()

    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stop = await self._handle_line(line, writer)
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-reply: nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes,
                           writer: asyncio.StreamWriter) -> bool:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            await self._send(writer, {"op": "error", "id": None,
                                      "error": f"bad request: {exc}"})
            return False
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op == "check":
                await self._check_batch(writer, request_id,
                                        [request["trace"]], batch=False)
            elif op == "batch":
                await self._check_batch(writer, request_id,
                                        list(request["traces"]),
                                        batch=True)
            elif op == "status":
                await self._send(writer,
                                 {"op": "stats", "id": request_id,
                                  "engine_stats": self.service.stats()})
            elif op == "shutdown":
                await self._send(writer, {"op": "bye",
                                          "id": request_id})
                assert self._stopped is not None
                self._stopped.set()
                return True
            else:
                raise ValueError(f"unknown op {op!r}")
        except Exception as exc:
            await self._send(writer, {"op": "error", "id": request_id,
                                      "error": f"{type(exc).__name__}:"
                                               f" {exc}"})
        return False

    async def _check_batch(self, writer: asyncio.StreamWriter,
                           request_id, traces, *,
                           batch: bool) -> None:
        loop = asyncio.get_running_loop()
        # submit() may block (parent warmup, parent-only mode): keep
        # the loop responsive by running it on the default executor.
        futures = await loop.run_in_executor(
            None, self.service.submit, traces)
        for future in futures:
            result = await asyncio.wrap_future(future)
            reply = {"op": "verdict", "id": request_id}
            reply.update(result.to_payload())
            await self._send(writer, reply)
        if batch:
            await self._send(writer,
                             {"op": "batch_done", "id": request_id,
                              "count": len(futures),
                              "engine_stats": self.service.stats()})

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict
                    ) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()


def run_server(service: CheckingService, host: str = "127.0.0.1",
               port: int = 0, *, ready=None) -> None:
    """Run a server until a ``shutdown`` request (blocking).

    ``ready(server)`` is called once the socket is bound — the CLI uses
    it to print the actual address (``port=0`` picks a free one) in a
    line scripts can parse.
    """

    async def main() -> None:
        server = ServiceServer(service, host, port)
        await server.start()
        if ready is not None:
            ready(server)
        await server.wait_closed()

    asyncio.run(main())
