"""Persistent shard workers: the pool that outlives the call.

``ShardedBackend`` used to fork a fresh set of shard processes for
every ``check_iter``/``run_iter`` call and hand each a one-shot arena
handle — which is why ``bench_shard_scaling`` showed sharding *losing*
to serial on small repeated calls: the fork + re-warm cost was paid per
call.  This module factors the worker lifetime out of the call:

* :class:`ShardPool` spawns shard processes **once** and reuses them
  across calls.  Work is submitted as ``(kind, name, payload)`` items —
  the same ``exec`` / ``check`` / ``run`` task kinds the old fan-out
  used — either streamed (:meth:`ShardPool.submit_stream`, bounded
  backpressure, results re-sequenced in input order) or as a
  materialised list returning one future per item
  (:meth:`ShardPool.submit`).  Cumulative counters come back on every
  call barrier and surface through :meth:`ShardPool.run_stats`.
* Arena epochs are **republished, not re-forked**: the parent
  broadcasts an ``("epoch", model, handle)`` message and each worker
  re-attaches by :data:`~repro.engine.shard.ArenaHandle`, rebuilding a
  fresh oracle around the new epoch's rows.  A worker that cannot
  attach (the segment is gone, the payload is torn) keeps its previous
  oracle — stale rows only ever describe transitions that are still
  correct, so the fallback is soundness-preserving and merely misses
  the new epoch's sharing (the parity harness enforces bit-for-bit
  identical verdicts either way).
* :class:`ArenaEpochs` owns the parent side of that story: the warm
  packing oracles, the current :class:`~repro.engine.shard.MemoArena`,
  and the *miss-watermark* republish policy — a new epoch is cut when
  the pool has accumulated enough arena misses to suggest the published
  rows no longer cover the workload, instead of unconditionally per
  call.

Shared-memory segments and worker processes are released by
``close()``; a ``weakref.finalize`` safety net unlinks/terminates at
garbage collection so an abandoned pool cannot leak OS resources past
interpreter exit.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
import time
import traceback
import weakref
import zlib
from concurrent.futures import Future
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.coverage import REGISTRY
from repro.engine.shard import ArenaHandle, ArenaReader, MemoArena
from repro.executor.executor import execute_script
from repro.oracle import (Oracle, VectoredOracle, create_oracle,
                          get_oracle)
from repro.script.parser import parse_trace
from repro.script.printer import print_trace

#: Stats keys each worker accumulates and reports on call barriers.
_WORKER_COUNTERS = ("arena_hits", "arena_misses", "epochs_adopted",
                    "epoch_attach_failures", "verdict_hits",
                    "compiled_hits", "compiled_misses")

#: Bound on the per-worker verdict memo (entries, FIFO eviction).
VERDICT_MEMO_MAX = 4096


class ShardWorkerState:
    """Everything a shard worker keeps warm across calls and epochs.

    Factored out of the worker loop so epoch re-attachment is testable
    in-process: ``adopt_epoch`` is exactly what a worker does on an
    ``("epoch", ...)`` message, and ``check`` is its per-trace path.

    Oracles are built fresh *inside* the worker (never inherited from
    the parent) and kept per model; on each adopted epoch the model's
    oracle is rebuilt around the new :class:`ArenaReader` — a worker
    that derived transitions locally has grown its intern table past
    the parent's, so re-seeding the new arena into the old table could
    misalign ids (``seed_table`` raises); rebuilding fresh sidesteps
    that entirely.  A bounded verdict memo keyed by exact trace text
    short-circuits repeat checks — the oracle is deterministic, so a
    memoized profile tuple is bit-for-bit the answer a re-check would
    produce (and it survives epoch swaps for the same reason).
    """

    def __init__(self) -> None:
        self._oracles: Dict[str, Oracle] = {}
        self._readers: Dict[str, ArenaReader] = {}
        self._verdicts: "Dict[Tuple[str, str], tuple]" = {}
        self._banked = {"arena_hits": 0, "arena_misses": 0,
                        "compiled_hits": 0, "compiled_misses": 0}
        self.epochs_adopted = 0
        self.epoch_attach_failures = 0
        self.verdict_hits = 0

    # -- oracles / epochs -----------------------------------------------------

    def oracle(self, model: str, collect_coverage: bool) -> Oracle:
        if collect_coverage:
            # Coverage keeps the old per-call policy: fresh engine
            # tables per check and no memo reuse, so prefix/memo hits
            # cannot swallow specification-clause cover() calls.
            return get_oracle(model, cache=False)
        oracle = self._oracles.get(model)
        if oracle is None:
            oracle = create_oracle(model, cache=True)
            self._oracles[model] = oracle
        return oracle

    def adopt_epoch(self, model: str, handle: ArenaHandle) -> bool:
        """Re-attach to a republished arena epoch.

        Returns True when the new epoch was adopted; on any failure the
        previous oracle (and its reader, if any) keeps serving — stale
        arena rows are still-correct transitions, so falling back costs
        sharing, never soundness.
        """
        try:
            reader = ArenaReader.attach(handle)
        except Exception:
            self.epoch_attach_failures += 1
            return False
        try:
            oracle = create_oracle(model, cache=True)
            if not isinstance(oracle, VectoredOracle):
                reader.close()
                return False
            oracle.adopt_shared_memo(reader)
        except Exception:
            reader.close()
            self.epoch_attach_failures += 1
            return False
        self._bank_counters(self._oracles.get(model))
        previous = self._readers.pop(model, None)
        self._oracles[model] = oracle
        self._readers[model] = reader
        if previous is not None:
            previous.close()
        self.epochs_adopted += 1
        return True

    def _bank_counters(self, oracle: Optional[Oracle]) -> None:
        # A replaced oracle's hit/miss history must survive into the
        # cumulative stats even though the oracle itself is dropped.
        if oracle is None:
            return
        self._banked["compiled_hits"] += getattr(
            oracle, "compiled_hits", 0)
        self._banked["compiled_misses"] += getattr(
            oracle, "compiled_misses", 0)
        if isinstance(oracle, VectoredOracle) and oracle.cache is not None:
            for memo in oracle.engine_snapshot()[1]:
                self._banked["arena_hits"] += getattr(
                    memo, "arena_hits", 0)
                self._banked["arena_misses"] += getattr(
                    memo, "arena_misses", 0)

    # -- checking -------------------------------------------------------------

    def check(self, model: str, collect_coverage: bool,
              trace_text: str) -> Tuple[tuple, tuple]:
        """Check one trace (text form); return (profiles, covered)."""
        if not collect_coverage:
            memoized = self._verdicts.get((model, trace_text))
            if memoized is not None:
                self.verdict_hits += 1
                return memoized, ()
        oracle = self.oracle(model, collect_coverage)
        trace = parse_trace(trace_text)
        if collect_coverage:
            REGISTRY.reset_hits()
        verdict = oracle.check(trace)
        covered = (tuple(sorted(REGISTRY.hit_names()))
                   if collect_coverage else ())
        if not collect_coverage:
            if len(self._verdicts) >= VERDICT_MEMO_MAX:
                self._verdicts.pop(next(iter(self._verdicts)))
            self._verdicts[(model, trace_text)] = verdict.profiles
        return verdict.profiles, covered

    # -- stats / teardown -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        totals = dict(self._banked)
        for oracle in self._oracles.values():
            totals["compiled_hits"] += getattr(
                oracle, "compiled_hits", 0)
            totals["compiled_misses"] += getattr(
                oracle, "compiled_misses", 0)
            if isinstance(oracle, VectoredOracle) \
                    and oracle.cache is not None:
                for memo in oracle.engine_snapshot()[1]:
                    totals["arena_hits"] += getattr(
                        memo, "arena_hits", 0)
                    totals["arena_misses"] += getattr(
                        memo, "arena_misses", 0)
        totals["epochs_adopted"] = self.epochs_adopted
        totals["epoch_attach_failures"] = self.epoch_attach_failures
        totals["verdict_hits"] = self.verdict_hits
        return totals

    def close(self) -> None:
        for reader in self._readers.values():
            reader.close()
        self._readers = {}
        self._oracles = {}


def _pool_worker(shard_index: int, in_q, out_q) -> None:
    """One persistent shard process: drain messages until the sentinel.

    Messages from the parent:

    * ``("epoch", model, handle)`` — re-attach to a republished arena.
    * ``("task", call_id, model, coverage, batch)`` — a chunk of
      ``(kind, index, payload)`` items; results go back as
      ``("ok", call_id, [(index, result), ...])``.
    * ``("end", call_id)`` — call barrier; the worker answers
      ``("done", call_id, shard_index, cumulative_stats)``.  Because
      each worker's messages are FIFO, the parent seeing ``done`` knows
      every ``ok`` of that call from this shard already arrived.
    * ``None`` — shut down.
    """
    state = ShardWorkerState()
    try:
        while True:
            message = in_q.get()
            if message is None:
                break
            kind = message[0]
            if kind == "epoch":
                _, model, handle = message
                state.adopt_epoch(model, handle)
                continue
            if kind == "end":
                out_q.put(("done", message[1], shard_index,
                           state.stats()))
                continue
            _, call_id, model, coverage, batch = message
            results = []
            for task_kind, index, payload in batch:
                if task_kind == "exec":
                    quirks, script = payload
                    results.append(
                        (index,
                         print_trace(execute_script(quirks, script))))
                elif task_kind == "check":
                    results.append(
                        (index, state.check(model, coverage, payload)))
                else:  # "run": execute *and* check on the shard
                    quirks, script = payload
                    t0 = time.perf_counter()
                    trace_text = print_trace(
                        execute_script(quirks, script))
                    t1 = time.perf_counter()
                    profiles, covered = state.check(model, coverage,
                                                    trace_text)
                    t2 = time.perf_counter()
                    results.append(
                        (index,
                         (script.target_function, trace_text, profiles,
                          covered, t1 - t0, t2 - t1)))
            out_q.put(("ok", call_id, results))
    except Exception:
        out_q.put(("fatal", shard_index, traceback.format_exc()))
    finally:
        state.close()


class ShardCall:
    """One submitted batch: re-sequenced results plus per-call stats.

    Results stream through :meth:`results` in input-index order as the
    shards complete them.  ``stats`` holds the per-call *delta* of the
    pool's cumulative worker counters once the call barrier completes
    (exact for sequential calls, approximate under concurrent ones —
    the counters are pool-wide).
    """

    _SENTINEL = object()

    def __init__(self, pool: "ShardPool", call_id: int,
                 start_index: int, window_items: int) -> None:
        self.call_id = call_id
        self.stats: Dict[str, int] = {}
        self._pool = pool
        self._next = start_index
        self._buffered: Dict[int, object] = {}
        self._out: "queue_mod.Queue" = queue_mod.Queue()
        self._in_flight = threading.Semaphore(window_items)
        self._stop = threading.Event()
        self._finished = threading.Event()
        self._error: Optional[BaseException] = None
        self._feeder_error: Optional[BaseException] = None
        self._fed: Optional[int] = None
        self._delivered = 0
        self._done_shards: set = set()
        self._stats_before = pool._worker_totals()

    # -- collector side (pool's collector thread) -----------------------------

    def _deliver(self, index: int, payload: object) -> None:
        self._buffered[index] = payload
        while self._next in self._buffered:
            self._out.put((self._next, self._buffered.pop(self._next)))
            self._delivered += 1
            self._next += 1

    def _shard_done(self, shard_index: int,
                    n_shards: int) -> None:
        self._done_shards.add(shard_index)
        if len(self._done_shards) < n_shards:
            return
        # Per-worker FIFO: every ok of this call already arrived, so a
        # shortfall here means a result message was lost (e.g. an
        # unpicklable payload dropped by a child's queue feeder).
        if self._feeder_error is not None:
            self._fail(self._feeder_error)
        elif self._fed is not None and self._delivered < self._fed:
            self._fail(RuntimeError(
                f"sharded run lost results: fed {self._fed}, "
                f"received {self._delivered}"))
        else:
            self._finish()

    def _finish(self) -> None:
        if self._finished.is_set():
            return
        after = self._pool._worker_totals()
        self.stats = {key: after.get(key, 0)
                      - self._stats_before.get(key, 0)
                      for key in _WORKER_COUNTERS}
        self._finished.set()
        self._out.put(ShardCall._SENTINEL)

    def _fail(self, error: BaseException) -> None:
        if self._finished.is_set():
            return
        self._error = error
        self._finished.set()
        self._out.put(ShardCall._SENTINEL)

    # -- consumer side --------------------------------------------------------

    def results(self) -> Iterator[Tuple[int, object]]:
        """Yield ``(index, result)`` in input order as they complete."""
        try:
            while True:
                try:
                    item = self._out.get(timeout=0.5)
                except queue_mod.Empty:
                    self._pool._check_health()
                    continue
                if item is ShardCall._SENTINEL:
                    if self._error is not None:
                        raise self._error
                    return
                self._in_flight.release()
                yield item
        finally:
            # Abandonment (or error): stop the feeder; queued work
            # drains in the background, as under ProcessPoolBackend.
            self._stop.set()
            self._pool._retire_call(self)


class ShardPool:
    """Shard worker processes that outlive individual calls.

    The pool spawns lazily on first use and keeps its workers across
    calls; arena epochs are pushed to the *running* workers with
    :meth:`publish` (and replayed to newly spawned ones), so a new
    epoch costs one attach per worker instead of a pool re-fork.
    ``close()`` is a full stop — a later call restarts the pool (the
    ``cold_starts`` counter in :meth:`run_stats` makes that visible).
    """

    def __init__(self, shards: int, *, window: int = 16,
                 chunk: int = 16) -> None:
        self.shards = max(1, shards)
        #: Bounded per-shard queue depth, in batches — the backpressure
        #: window a lazy stream is pulled ahead by.
        self.window = max(1, window)
        #: Items per queue message (per-item IPC would dominate).
        self.chunk = max(1, chunk)
        self._ctx = multiprocessing.get_context()
        self._procs: Optional[list] = None
        self._in_qs: list = []
        self._out_q = None
        self._collector: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._calls: Dict[int, ShardCall] = {}
        self._call_ids = iter(range(1, 1 << 62)).__next__
        self._shard_stats: Dict[int, Dict[str, int]] = {}
        self._epoch_handles: Dict[str, ArenaHandle] = {}
        self._broken: Optional[str] = None
        self.cold_starts = 0
        self.calls_started = 0
        self._finalizer = weakref.finalize(self, ShardPool._atexit,
                                           weakref.ref(self))

    @staticmethod
    def _atexit(pool_ref) -> None:  # pragma: no cover - GC timing
        pool = pool_ref()
        if pool is not None:
            try:
                pool.close()
            except Exception:
                pass

    # -- lifecycle ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._procs is not None

    def start(self) -> None:
        """Spawn the workers (idempotent; restarts after ``close``)."""
        with self._lock:
            if self._procs is not None:
                return
            self._stop.clear()
            self._broken = None
            self._out_q = self._ctx.Queue()
            self._in_qs = [self._ctx.Queue(self.window)
                           for _ in range(self.shards)]
            self._procs = [
                self._ctx.Process(target=_pool_worker,
                                  args=(i, self._in_qs[i], self._out_q),
                                  daemon=True)
                for i in range(self.shards)]
            for proc in self._procs:
                proc.start()
            self._shard_stats = {}
            self.cold_starts += 1
            # Replay the standing epochs so late-spawned workers see
            # the same arenas the running ones adopted.
            for model, handle in self._epoch_handles.items():
                for in_q in self._in_qs:
                    in_q.put(("epoch", model, handle))
            self._collector = threading.Thread(target=self._collect,
                                               daemon=True)
            self._collector.start()

    def publish(self, model: str, handle: ArenaHandle) -> None:
        """Broadcast a republished arena epoch to every worker."""
        self._epoch_handles[model] = handle
        if not self.alive:
            return  # replayed by start()
        for in_q in self._in_qs:
            self._put_blocking(in_q, ("epoch", model, handle))

    def close(self) -> None:
        with self._lock:
            procs, self._procs = self._procs, None
            in_qs, self._in_qs = self._in_qs, []
            out_q, self._out_q = self._out_q, None
            collector, self._collector = self._collector, None
            calls, self._calls = dict(self._calls), {}
        for call in calls.values():
            call._fail(RuntimeError("shard pool closed"))
        self._stop.set()
        if procs is None:
            return
        for in_q in in_qs:
            try:
                in_q.put_nowait(None)
            except queue_mod.Full:
                pass
        if out_q is not None:
            out_q.cancel_join_thread()
        for proc in procs:
            proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - abandonment
                proc.terminate()
                proc.join()
        if collector is not None:
            collector.join(timeout=2)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -----------------------------------------------------------

    def shard_of(self, partition: str, name: str) -> int:
        """Stable item routing: repeats of a name land on the shard
        whose caches already know it."""
        return zlib.crc32(f"{partition}:{name}".encode()) % self.shards

    def submit_stream(self, items: Iterable[Tuple[str, str, object]],
                      *, model: Optional[str] = None,
                      collect_coverage: bool = False,
                      partition: str = "",
                      start_index: int = 0) -> ShardCall:
        """Feed ``(kind, name, payload)`` items to the pool.

        ``items`` may be a lazy generator: a feeder thread pulls it
        only ``window * chunk`` items ahead of consumption (the
        in-flight semaphore is released as :meth:`ShardCall.results`
        yields), so a generating plan stream stays lazy.  A stream that
        raises mid-generation fails the call rather than truncating it.
        """
        if self._broken is not None:
            raise RuntimeError(self._broken)
        self.start()
        call = ShardCall(self, self._call_ids(), start_index,
                         window_items=self.window * self.chunk
                         * self.shards)
        with self._lock:
            self._calls[call.call_id] = call
            self.calls_started += 1
        feeder = threading.Thread(
            target=self._feed,
            args=(call, items, model, collect_coverage, partition,
                  start_index),
            daemon=True)
        feeder.start()
        return call

    def submit(self, items: Iterable[Tuple[str, str, object]], *,
               model: Optional[str] = None,
               collect_coverage: bool = False, partition: str = "",
               start_index: int = 0) -> List[Future]:
        """Submit a materialised item list; one future per item.

        A drainer thread resolves the futures as results stream back;
        a pool failure rejects every still-pending future.
        """
        items = list(items)
        futures: List[Future] = [Future() for _ in items]
        if not items:
            return futures
        call = self.submit_stream(items, model=model,
                                  collect_coverage=collect_coverage,
                                  partition=partition,
                                  start_index=start_index)

        def drain() -> None:
            try:
                for index, payload in call.results():
                    futures[index - start_index].set_result(payload)
            except BaseException as exc:
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)

        threading.Thread(target=drain, daemon=True).start()
        return futures

    def _feed(self, call: ShardCall, items, model,
              collect_coverage: bool, partition: str,
              start_index: int) -> None:
        buffers: List[list] = [[] for _ in range(self.shards)]
        fed = 0

        def flush(shard: int) -> bool:
            batch = buffers[shard]
            if not batch:
                return True
            message = ("task", call.call_id, model, collect_coverage,
                       batch)
            if not self._put_blocking(self._in_qs[shard], message,
                                      stop=call._stop):
                return False
            buffers[shard] = []
            return True

        try:
            for index, (kind, name, payload) in enumerate(
                    items, start_index):
                while not call._in_flight.acquire(timeout=0.1):
                    if call._stop.is_set() or self._stop.is_set():
                        return
                shard = self.shard_of(partition, name)
                buffers[shard].append((kind, index, payload))
                fed += 1
                if len(buffers[shard]) >= self.chunk:
                    if not flush(shard):
                        return
            for shard in range(self.shards):
                if not flush(shard):
                    return
        except BaseException as exc:
            # The lazy stream raised mid-generation: record it so the
            # consumer re-raises instead of reading a short pass.
            call._feeder_error = exc
        finally:
            call._fed = fed
            in_qs = self._in_qs
            for in_q in in_qs:
                self._put_blocking(in_q, ("end", call.call_id))

    def _put_blocking(self, in_q, message, *,
                      stop: Optional[threading.Event] = None) -> bool:
        while True:
            if self._stop.is_set() or (stop is not None
                                       and stop.is_set()):
                return False
            try:
                in_q.put(message, timeout=0.1)
                return True
            except queue_mod.Full:
                continue

    # -- collection -----------------------------------------------------------

    def _collect(self) -> None:
        out_q = self._out_q
        procs = self._procs
        while out_q is not None:
            try:
                message = out_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, ValueError):
                if self._stop.is_set():
                    return
                self._check_health(procs)
                continue
            except EOFError:  # pragma: no cover - teardown race
                return
            kind = message[0]
            if kind == "fatal":
                self._break(f"shard {message[1]} failed:"
                            f"\n{message[2]}")
                continue
            if kind == "done":
                _, call_id, shard_index, stats = message
                with self._lock:
                    self._shard_stats[shard_index] = stats
                call = self._calls.get(call_id)
                if call is not None:
                    call._shard_done(shard_index, self.shards)
                continue
            # ("ok", call_id, results)
            call = self._calls.get(message[1])
            if call is not None:
                for index, payload in message[2]:
                    call._deliver(index, payload)

    def _check_health(self, procs=None) -> None:
        procs = procs if procs is not None else self._procs
        if self._stop.is_set() or procs is None:
            return
        dead = [i for i, proc in enumerate(procs)
                if not proc.is_alive()]
        if dead and self._calls:
            self._break(f"shard process(es) {dead} died unexpectedly "
                        "(see stderr for the cause)")

    def _break(self, reason: str) -> None:
        # The failure callbacks run outside the lock: a call's waiter
        # may re-enter pool accessors from another thread.
        with self._lock:
            self._broken = reason
            calls = list(self._calls.values())
        for call in calls:
            call._fail(RuntimeError(reason))

    def _retire_call(self, call: ShardCall) -> None:
        with self._lock:
            self._calls.pop(call.call_id, None)

    # -- stats ----------------------------------------------------------------

    def _worker_totals(self) -> Dict[str, int]:
        with self._lock:
            totals = {key: 0 for key in _WORKER_COUNTERS}
            for stats in self._shard_stats.values():
                for key in _WORKER_COUNTERS:
                    totals[key] += stats.get(key, 0)
        return totals

    def run_stats(self) -> Dict[str, int]:
        """Cumulative pool counters: worker totals (as of the last call
        barrier) plus the parent-side lifecycle counters."""
        totals = self._worker_totals()
        totals["shards"] = self.shards
        totals["pool_cold_starts"] = self.cold_starts
        totals["pool_calls"] = self.calls_started
        return totals


class ArenaEpochs:
    """The parent half of epoch republishing: warm oracles, the current
    arena, and the miss-watermark policy.

    One arena is live at a time (matching the one-model-per-campaign
    shape the sharded backend always had); cutting an epoch for a model
    drops the previous segment first so a stale handle can never reach
    a worker after its memory is gone — workers that already adopted it
    keep their (still-correct) mapped copy until the next epoch
    arrives.

    ``needs_publish`` is the amortization knob: a model is published
    once, then *re*published only after the pool reports at least
    ``miss_watermark`` arena misses since the last cut — i.e. when the
    workload has drifted far enough from the published rows to be worth
    a new pack-and-attach round trip.  ``miss_watermark <= 0`` disables
    republishing entirely (first epoch only).
    """

    def __init__(self, pool: ShardPool, *, reclaim: bool = True,
                 miss_watermark: int = 512) -> None:
        self.pool = pool
        self.reclaim = reclaim
        self.miss_watermark = miss_watermark
        self.epochs_published = 0
        self._warm: Dict[str, Oracle] = {}
        self._arena: Optional[MemoArena] = None
        self._published: set = set()
        self._miss_floor: Dict[str, int] = {}
        self._finalizer = weakref.finalize(self, ArenaEpochs._atexit,
                                           weakref.ref(self))

    @staticmethod
    def _atexit(epochs_ref) -> None:  # pragma: no cover - GC timing
        epochs = epochs_ref()
        if epochs is not None:
            try:
                epochs.close()
            except Exception:
                pass

    @property
    def arena(self) -> Optional[MemoArena]:
        return self._arena

    def warm_oracle(self, model: str) -> Oracle:
        oracle = self._warm.get(model)
        if oracle is None:
            oracle = create_oracle(model, cache=True)
            self._warm[model] = oracle
        return oracle

    def needs_publish(self, model: str) -> bool:
        if model not in self._published:
            return True
        if self.miss_watermark <= 0:
            return False
        misses = self.pool.run_stats().get("arena_misses", 0)
        return (misses - self._miss_floor.get(model, 0)
                >= self.miss_watermark)

    def compiled_totals(self) -> Dict[str, int]:
        """Lifetime compiled-engine counters over the warm oracles
        (zero for models whose oracle has no compiled fast path)."""
        totals = {"compiled_hits": 0, "compiled_misses": 0}
        for oracle in self._warm.values():
            for key in totals:
                totals[key] += getattr(oracle, key, 0)
        return totals

    def publish(self, model: str) -> Optional[MemoArena]:
        """Cut a new epoch from the warm oracle and broadcast it."""
        oracle = self._warm.get(model)
        self._drop_arena()
        self._published.add(model)
        self._miss_floor[model] = \
            self.pool.run_stats().get("arena_misses", 0)
        if not isinstance(oracle, VectoredOracle):
            return None  # reference/custom oracles: no engine tables
        table, memos = oracle.engine_snapshot()
        keep = oracle.live_state_ids() if self.reclaim else None
        self._arena = MemoArena.create(table, memos, keep_sids=keep)
        self.epochs_published += 1
        self.pool.publish(model, self._arena.handle())
        return self._arena

    def _drop_arena(self) -> None:
        if self._arena is not None:
            self._arena.close()
            self._arena.unlink()
            self._arena = None

    def close(self) -> None:
        self._drop_arena()
        self._warm = {}
        self._published = set()
