"""Blocking client for the ``repro serve`` line-JSON protocol.

Deliberately dependency-free (``socket`` + ``json``): the CLI's
``repro check --server``, the parity harness and the CI smoke script
all talk to the server through this one class, and a third-party
client needs nothing but a TCP socket and a JSON codec to do the same.
Responses are returned as the raw decoded dicts — the protocol's
``profiles`` rows are lossless
:meth:`~repro.oracle.ConformanceProfile.to_dict` forms, so callers
that want profile *objects* rebuild them with ``from_dict``.
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, List, Optional, Sequence, Tuple, Union

Address = Union[str, Tuple[str, int]]


def parse_address(address: Address) -> Tuple[str, int]:
    """``"host:port"`` (or a ready pair) -> ``(host, port)``."""
    if isinstance(address, tuple):
        return address[0], int(address[1])
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"server address must be HOST:PORT, got {address!r}")
    return host, int(port)


class ServiceClient:
    """One connection to a checking server."""

    def __init__(self, address: Address,
                 timeout: Optional[float] = 60.0) -> None:
        host, port = parse_address(address)
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # -- protocol plumbing ----------------------------------------------------

    def _send(self, payload: dict) -> None:
        self._sock.sendall(json.dumps(payload).encode() + b"\n")

    def _read(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = json.loads(line)
        if reply.get("op") == "error":
            raise RuntimeError(f"server error: {reply.get('error')}")
        return reply

    def request(self, payload: dict) -> dict:
        """One request, one response (``check``/``status``/...)."""
        self._send(payload)
        return self._read()

    # -- the protocol verbs ---------------------------------------------------

    def check(self, trace_text: str, *, request_id=None) -> dict:
        """Check one trace; returns the ``verdict`` message."""
        return self.request({"op": "check", "id": request_id,
                             "trace": trace_text})

    def check_batch(self, trace_texts: Sequence[str], *,
                    request_id=None) -> Tuple[List[dict], dict]:
        """Check many traces; returns (verdicts in input order, the
        ``batch_done`` message carrying ``engine_stats``)."""
        self._send({"op": "batch", "id": request_id,
                    "traces": list(trace_texts)})
        verdicts: List[dict] = []
        while True:
            reply = self._read()
            if reply.get("op") == "batch_done":
                return verdicts, reply
            verdicts.append(reply)

    def iter_batch(self, trace_texts: Sequence[str], *,
                   request_id=None) -> Iterator[dict]:
        """Streaming form of :meth:`check_batch`: yields each
        ``verdict`` as it arrives, then the ``batch_done`` message."""
        self._send({"op": "batch", "id": request_id,
                    "traces": list(trace_texts)})
        while True:
            reply = self._read()
            yield reply
            if reply.get("op") == "batch_done":
                return

    def status(self, *, request_id=None) -> dict:
        """Fetch the server's cumulative ``engine_stats``."""
        return self.request({"op": "status", "id": request_id})

    def shutdown(self, *, request_id=None) -> dict:
        """Ask the server to stop (returns its ``bye``)."""
        return self.request({"op": "shutdown", "id": request_id})

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
