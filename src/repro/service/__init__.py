"""The persistent checking service: the oracle as a standing facility.

This package is the subsystem behind ``repro serve``.  Layering, bottom
up:

* :mod:`repro.service.pool` — :class:`ShardPool`, shard worker
  processes that outlive individual calls and re-attach to republished
  arena epochs (:class:`ArenaEpochs` owns the parent side);
  :class:`repro.harness.backends.ShardedBackend` is built on it, so
  batch runs share the amortization.
* :mod:`repro.service.service` — :class:`CheckingService`, the
  long-lived warm oracle + pool session with an explicit
  ``start/submit/drain/stats/shutdown`` lifecycle.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  stdlib-``asyncio`` line-JSON front door and its blocking client
  (``repro serve`` / ``repro check --server``).

Submodules load lazily (PEP 562) so the pool layer — which
:mod:`repro.harness.backends` sits on — can be imported without
touching the front-door modules above it.
"""

import importlib

_EXPORTS = {
    "ArenaEpochs": "repro.service.pool",
    "ShardCall": "repro.service.pool",
    "ShardPool": "repro.service.pool",
    "ShardWorkerState": "repro.service.pool",
    "CheckResult": "repro.service.service",
    "CheckingService": "repro.service.service",
    "ServiceServer": "repro.service.server",
    "run_server": "repro.service.server",
    "ServiceClient": "repro.service.client",
    "parse_address": "repro.service.client",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro.service' has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
