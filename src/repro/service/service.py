"""The long-lived checking session behind ``repro serve``.

A :class:`CheckingService` is a warm
:class:`~repro.oracle.VectoredOracle` plus a persistent
:class:`~repro.service.pool.ShardPool` with an explicit lifecycle:
``start`` / ``submit`` / ``drain`` / ``stats`` / ``shutdown``.  It is
the paper's oracle offered as a standing facility — traces arrive over
its lifetime and are checked against state that stays warm, instead of
each batch paying the fork + warmup + arena-publish cost from scratch.

Epoch policy: the first ``warmup`` traces of a *new* epoch are checked
in the parent (their verdicts resolve immediately, and the pass
populates the warm oracle's tables), then the arena is published and
everything else fans out to the pool.  Later submissions skip the
warmup entirely — a new epoch is cut only when the pool's cumulative
arena misses cross ``miss_watermark`` (the workload drifted), which is
what drives the amortized per-call overhead toward zero.

``shards=0`` selects the parent-only mode (``repro serve --backend
serial``): every trace is checked synchronously in the submitting
thread on the warm oracle — no processes, same verdicts.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
from concurrent.futures import Future, wait
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.oracle import ConformanceProfile
from repro.script.ast import Trace
from repro.script.parser import parse_trace
from repro.script.printer import print_trace
from repro.service.pool import ArenaEpochs, ShardPool
from repro.store import CampaignStore, TraceRecord


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """One served verdict: the trace name and its per-platform
    profiles (exactly what travels over the wire — a
    :class:`~repro.oracle.Verdict` can be rebuilt from it with the
    parsed trace when a caller wants the rendered view)."""

    name: str
    profiles: Tuple[ConformanceProfile, ...]

    @property
    def accepted(self) -> bool:
        return self.profiles[0].accepted

    @property
    def accepted_on(self) -> Tuple[str, ...]:
        return tuple(p.platform for p in self.profiles if p.accepted)

    def to_payload(self) -> dict:
        """The wire form (lossless: ConformanceProfile round-trips)."""
        return {"name": self.name, "accepted": self.accepted,
                "accepted_on": list(self.accepted_on),
                "profiles": [p.to_dict() for p in self.profiles]}

    @classmethod
    def from_payload(cls, payload: dict) -> "CheckResult":
        return cls(name=payload["name"],
                   profiles=tuple(ConformanceProfile.from_dict(row)
                                  for row in payload["profiles"]))


class CheckingService:
    """A persistent warm oracle + shard pool with explicit lifecycle."""

    def __init__(self, model: str = "all", *,
                 shards: Optional[int] = None, warmup: int = 16,
                 miss_watermark: int = 256, window: int = 16,
                 chunk: int = 16, reclaim: bool = True,
                 store: Optional[Union[CampaignStore, str]] = None
                 ) -> None:
        self.model = model
        # Campaign store wiring (``repro serve --store DIR``): every
        # verdict the service produces is appended as it resolves,
        # under the "serve:<model>" partition — content-addressed, so
        # client retries and re-submissions add zero rows, and the
        # campaign survives server restarts.  A store given as a path
        # is owned (closed on shutdown); an instance is shared.
        if store is None or isinstance(store, CampaignStore):
            self.store = store
            self._owns_store = False
        else:
            self.store = CampaignStore(store)
            self._owns_store = True
        self.warmup = max(0, warmup)
        if shards == 0:
            self.shards = 0
            self._pool: Optional[ShardPool] = None
            pool = ShardPool(1)  # never started: stats source only
        else:
            self.shards = shards or max(
                2, multiprocessing.cpu_count())
            self._pool = pool = ShardPool(self.shards, window=window,
                                          chunk=chunk)
        self._epochs = ArenaEpochs(pool, reclaim=reclaim,
                                   miss_watermark=miss_watermark)
        self._lock = threading.Lock()
        self._outstanding: List[Future] = []
        self._submitted = 0
        self._resolved_in_parent = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Warm up eagerly (idempotent): spawn the pool and build the
        parent oracle so the first ``submit`` pays less."""
        if self._closed:
            raise RuntimeError("service is shut down")
        self._epochs.warm_oracle(self.model)
        if self._pool is not None:
            self._pool.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted trace has a verdict (or the
        timeout passes); returns True when fully drained."""
        with self._lock:
            pending = [f for f in self._outstanding if not f.done()]
            self._outstanding = pending
        if not pending:
            return True
        done, not_done = wait(pending, timeout=timeout)
        return not not_done

    def shutdown(self) -> None:
        """Drain nothing, release everything: shard processes, shared
        arenas, warm oracles.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._epochs.close()
        if self._pool is not None:
            self._pool.close()
        if self.store is not None:
            if self._owns_store:
                self.store.close()
            else:
                self.store.flush()

    def __enter__(self) -> "CheckingService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission -----------------------------------------------------------

    def check(self, trace: Union[str, Trace]) -> CheckResult:
        """Submit one trace and wait for its verdict."""
        return self.submit([trace])[0].result()

    def _store_append(self, trace: Trace,
                      profiles: Tuple[ConformanceProfile, ...]) -> None:
        if self.store is not None:
            self.store.append(TraceRecord(
                partition=f"serve:{self.model}", name=trace.name,
                target_function="", trace_text=print_trace(trace),
                profiles=tuple(profiles)))

    def submit(self, traces: Sequence[Union[str, Trace]]
               ) -> List[Future]:
        """Submit traces (parsed or text); one future per trace, each
        resolving to a :class:`CheckResult`, in input order."""
        if self._closed:
            raise RuntimeError("service is shut down")
        parsed: List[Trace] = [
            parse_trace(t) if isinstance(t, str) else t
            for t in traces]
        futures: List[Future] = [Future() for _ in parsed]
        if not parsed:
            return futures
        with self._lock:
            index = 0
            if self._pool is None:
                # Parent-only mode: check synchronously, warm oracle.
                oracle = self._epochs.warm_oracle(self.model)
                for future, trace in zip(futures, parsed):
                    verdict = oracle.check(trace)
                    self._store_append(trace, verdict.profiles)
                    future.set_result(CheckResult(trace.name,
                                                  verdict.profiles))
                self._resolved_in_parent += len(parsed)
            else:
                if self._epochs.needs_publish(self.model):
                    oracle = self._epochs.warm_oracle(self.model)
                    for trace in parsed[:self.warmup]:
                        verdict = oracle.check(trace)
                        self._store_append(trace, verdict.profiles)
                        futures[index].set_result(
                            CheckResult(trace.name, verdict.profiles))
                        index += 1
                    self._resolved_in_parent += index
                    self._epochs.publish(self.model)
                if index < len(parsed):
                    items = [("check", trace.name, print_trace(trace))
                             for trace in parsed[index:]]
                    inner = self._pool.submit(
                        items, model=self.model, partition=self.model,
                        start_index=index)
                    for offset, raw in enumerate(inner):
                        raw.add_done_callback(self._propagate(
                            futures[index + offset],
                            parsed[index + offset]))
            self._submitted += len(parsed)
            self._outstanding = [f for f in self._outstanding
                                 if not f.done()]
            self._outstanding.extend(f for f in futures
                                     if not f.done())
        return futures

    def _propagate(self, outer: Future, trace: Trace):
        # Bound (not static) so pool-path verdicts reach the campaign
        # store too; the callback runs on the pool's result thread and
        # the store append is behind the store's own lock.
        def done(inner: Future) -> None:
            error = inner.exception()
            if error is not None:
                outer.set_exception(error)
                return
            profiles, _covered = inner.result()
            self._store_append(trace, profiles)
            outer.set_result(CheckResult(trace.name, profiles))
        return done

    # -- stats ----------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cumulative service counters: pool worker totals plus the
        epoch/warmup amortization story."""
        totals: Dict[str, int] = (
            self._pool.run_stats() if self._pool is not None
            else {"shards": 0})
        arena = self._epochs.arena
        totals["epochs_published"] = self._epochs.epochs_published
        totals["arena_states"] = arena.n_states if arena else 0
        totals["arena_rows"] = arena.rows if arena else 0
        totals["traces_submitted"] = self._submitted
        totals["resolved_in_parent"] = self._resolved_in_parent
        if self.store is not None:
            store_stats = self.store.stats()
            totals["store_rows"] = store_stats["rows"]
            totals["store_dedup_hits"] = store_stats["dedup_hits"]
        return totals
