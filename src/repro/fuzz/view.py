"""The ``fuzz`` campaign-store view: corpus + frontier, incrementally.

Registered through :func:`repro.store.register_view` when
:mod:`repro.fuzz` is imported (the view-plugin mechanism: the store
core knows nothing about fuzzing).  The fold keeps, per partition, the
corpus size and verdict-signal counts, plus the global covered-clause
union; :meth:`FuzzView.result` joins that union against the coverage
registry's reachable universe to yield the per-platform *frontier* —
the reachable-but-unhit clauses the next fuzzing session should chase.
Because the state is a plain fold over trace records, ``repro fuzz
--store`` resumes exactly where the checkpoint left off, and ``repro
campaign view fuzz`` works on any store, fuzzed or not.
"""

from __future__ import annotations

from typing import Dict

from repro.core.coverage import REGISTRY
from repro.core.platform import real_platforms
from repro.store.records import TraceRecord
from repro.store.views import View


class FuzzView(View):
    """Corpus statistics and the coverage frontier as an incremental
    fold over campaign-store trace records."""

    name = "fuzz"

    def initial(self) -> dict:
        return {"partitions": {}, "clauses": [], "records": 0}

    def fold(self, state: dict, record: TraceRecord) -> None:
        state["records"] += 1
        row = state["partitions"].setdefault(
            record.partition,
            {"scripts": 0, "divergent": 0, "deviating": 0,
             "with_coverage": 0})
        row["scripts"] += 1
        accepted = [bool(p.accepted) for p in record.profiles]
        if any(not a for a in accepted):
            row["deviating"] += 1
            if any(accepted):
                row["divergent"] += 1
        if record.covered:
            row["with_coverage"] += 1
            merged = set(state["clauses"])
            merged.update(record.covered)
            state["clauses"] = sorted(merged)

    def result(self, state: dict) -> dict:
        covered = state["clauses"]
        frontier: Dict[str, list] = REGISTRY.frontier(
            covered, real_platforms())
        return {
            "records": state["records"],
            "partitions": state["partitions"],
            "covered_clauses": len(covered),
            "covered": list(covered),
            "frontier": frontier,
            "frontier_sizes": {platform: len(clauses)
                               for platform, clauses in frontier.items()},
        }
