"""AST-level mutation operators over scripts.

Every operator maps ``(Script, random.Random) -> Script`` and works on
the command AST — never on text — so each mutant round-trips through
the parser/printer byte-identically and type-checks against the frozen
command dataclasses by construction (a seeded property test enforces
both).  The operators:

* :func:`perturb` — argument perturbation: re-draw one field of one
  command from the randomized generator's pools (paths biased toward
  collisions, small fds, short/long payloads).
* :func:`splice` — crossover: a prefix of one parent spliced onto a
  suffix of another.
* :func:`insert` — targeted insertion: a fragment *synthesised from the
  structure of a rare clause's name* (``family.op.case``): a
  precondition engineering the case's situation (missing path, symlink
  cycle, path through a file, unprivileged process, ...) followed by
  the named operation aimed at it.
* :func:`extend` — append fresh random commands after the parent.
  This is the prefix-cache-friendly operator: the parent's whole
  prefix is intact, so checking a mutant re-uses the parent's cached
  state sets.
* :func:`drop` — remove one step (shrinks pathological growth).

After structural surgery :func:`sanitize` repairs process directives:
the kernel refuses duplicate ``create_process`` calls, so duplicated
create directives (and destroys for never-created processes) from a
splice must be dropped, and steps are otherwise left alone — the
executor auto-creates unknown pids and skips dead ones, which is
well-defined behaviour worth fuzzing, not an error.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence, Tuple

from repro.core import commands as C
from repro.core.flags import OpenFlag, SeekWhence
from repro.script.ast import (CreateEvent, DestroyEvent, Script,
                              ScriptItem, ScriptStep)
from repro.testgen.randomized import (DATA, MODES, _random_command,
                                      _random_flags, _random_path)

#: A payload past the partial-I/O bound (64): transfers this large
#: enumerate the short-read/short-write clauses.
LONG_DATA = b"z" * 65


def sanitize(items: Sequence[ScriptItem]) -> Tuple[ScriptItem, ...]:
    """Repair process directives after structural surgery.

    Drops create directives for already-live pids (the kernel raises on
    duplicates) and destroy directives for processes never created;
    plain steps always survive (unknown pids are auto-created, dead
    pids are skipped — both well-defined executor behaviour).
    """
    live = {1}
    out: List[ScriptItem] = []
    for item in items:
        if isinstance(item, CreateEvent):
            if item.pid in live:
                continue
            live.add(item.pid)
        elif isinstance(item, DestroyEvent):
            if item.pid not in live or item.pid == 1:
                continue
            live.discard(item.pid)
        elif isinstance(item, ScriptStep):
            live.add(item.pid)  # executor auto-creates on first step
        out.append(item)
    return tuple(out)


def _perturb_command(cmd: C.OsCommand, rng: random.Random) -> C.OsCommand:
    """Re-draw one field of one command from the generator pools."""
    fields = dataclasses.fields(cmd)
    field = rng.choice(fields)
    value = getattr(cmd, field.name)
    if isinstance(value, OpenFlag):
        new = _random_flags(rng)
    elif isinstance(value, bytes):
        new = rng.choice(tuple(DATA) + (LONG_DATA,))
    elif isinstance(value, str):
        new = _random_path(rng)
    elif isinstance(value, int) and field.name == "mode":
        new = rng.choice(MODES)
    elif isinstance(value, int):
        new = value + rng.choice((-65, -2, -1, 1, 2, 64, 65))
    else:
        new = value
    if new == value:
        return _random_command(rng)
    return dataclasses.replace(cmd, **{field.name: new})


def perturb(script: Script, rng: random.Random) -> Script:
    """Argument perturbation: mutate one field of one random step."""
    steps = [i for i, item in enumerate(script.items)
             if isinstance(item, ScriptStep)]
    if not steps:
        return extend(script, rng)
    index = rng.choice(steps)
    items = list(script.items)
    step = items[index]
    if rng.random() < 0.15:
        # Occasionally move the step to another scripted process.
        pids = sorted({it.pid for it in script.items
                       if isinstance(it, ScriptStep)} | {1, 2})
        items[index] = ScriptStep(pid=rng.choice(pids), cmd=step.cmd)
    else:
        items[index] = ScriptStep(pid=step.pid,
                                  cmd=_perturb_command(step.cmd, rng))
    return Script(name=script.name, items=sanitize(items))


def splice(a: Script, b: Script, rng: random.Random) -> Script:
    """Crossover: a prefix of ``a`` spliced onto a suffix of ``b``."""
    cut_a = rng.randint(0, len(a.items))
    cut_b = rng.randint(0, len(b.items))
    items = list(a.items[:cut_a]) + list(b.items[cut_b:])
    if not items:
        return extend(Script(name=a.name, items=()), rng)
    return Script(name=a.name, items=sanitize(items))


def extend(script: Script, rng: random.Random,
           count: Optional[int] = None) -> Script:
    """Append fresh random commands (keeps the parent prefix intact,
    so cached prefix state sets are re-used when checking)."""
    count = count if count is not None else rng.randint(1, 3)
    items = list(script.items)
    pids = sorted({it.pid for it in script.items
                   if isinstance(it, ScriptStep)} | {1})
    for _ in range(count):
        items.append(ScriptStep(pid=rng.choice(pids),
                                cmd=_random_command(rng)))
    return Script(name=script.name, items=sanitize(items))


def drop(script: Script, rng: random.Random) -> Script:
    """Remove one random item."""
    if not script.items:
        return extend(script, rng)
    index = rng.randrange(len(script.items))
    items = list(script.items)
    del items[index]
    return Script(name=script.name, items=sanitize(items))


# ---------------------------------------------------------------------------
# rare-clause fragments: clause-structured command synthesis
# ---------------------------------------------------------------------------
#
# Clause names are structured — ``fsop.<op>.<case>``, ``osapi.<call>.
# <case>``, ``pathres.<case>``, ``dirops.<case>`` — so a fragment is
# synthesised in two steps: a *precondition* from the case keywords
# (noent needs a missing path, resolution_error a path through a file,
# eloop a symlink cycle, is_dir a directory, ...) and then the named
# operation aimed at the prepared path.  The fragment is a directed
# nudge, not a guarantee: guidance comes from the energy scheduler
# reinforcing whatever actually lands.

def _mkfile(name: str) -> List[ScriptItem]:
    return [ScriptStep(1, C.Open(name, OpenFlag.O_CREAT
                                 | OpenFlag.O_WRONLY, 0o644)),
            ScriptStep(1, C.Close(3))]


def _case_path(case: str,
               rng: random.Random) -> Tuple[List[ScriptItem], str]:
    """``(precondition items, path)`` engineering the case's situation."""
    name = rng.choice(("a", "b", "c"))
    slash = "/" if "trailing_slash" in case else ""
    if "noent" in case or "none" in case:
        return [], f"nx{name}{slash}"
    if "resolution" in case or "intermediate" in case \
            or "not_dir" in case:
        return _mkfile("rf"), f"rf/{name}"
    if "loop" in case:
        return [ScriptStep(1, C.Symlink("l2", "l1")),
                ScriptStep(1, C.Symlink("l1", "l2"))], "l1"
    if "dangling" in case:
        return [ScriptStep(1, C.Symlink("nxt", "dl"))], "dl" + slash
    if "symlink" in case:
        return _mkfile("a") + [ScriptStep(1, C.Symlink("a", "s"))], \
            "s" + slash
    if "dir" in case:  # is_dir, success_dir, dir_* ...
        return [ScriptStep(1, C.Mkdir("d", 0o755))], "d" + slash
    if "exists" in case:
        return _mkfile("e"), "e" + slash
    if "success" in case or "own" in case:
        return _mkfile(name), name + slash
    return [], _random_path(rng) + slash


def _path_command(op: str, path: str,
                  rng: random.Random) -> Optional[C.OsCommand]:
    if op == "mkdir":
        return C.Mkdir(path, rng.choice(MODES))
    if op == "rmdir":
        return C.Rmdir(path)
    if op == "unlink":
        return C.Unlink(path)
    if op == "open":
        return C.Open(path, _random_flags(rng), rng.choice(MODES))
    if op == "opendir":
        return C.Opendir(path)
    if op == "stat":
        return C.StatCmd(path)
    if op == "lstat":
        return C.LstatCmd(path)
    if op == "readlink":
        return C.Readlink(path)
    if op == "truncate":
        return C.Truncate(path, rng.choice((-3, 0, 7, 70_000)))
    if op == "chmod":
        return C.Chmod(path, rng.choice(MODES))
    if op == "chown":
        return C.Chown(path, rng.choice((0, 1000)),
                       rng.choice((0, 1000)))
    if op == "chdir":
        return C.Chdir(path)
    if op == "symlink":
        return C.Symlink(_random_path(rng), path)
    return None


def _two_path_command(op: str, case: str, path: str,
                      rng: random.Random) -> List[ScriptItem]:
    """link/rename: the case names which side (src_/dst_) is special."""
    ctor = C.Link if op == "link" else C.Rename
    if case.startswith("dst"):
        return _mkfile("sf") + [ScriptStep(1, ctor("sf", path))]
    return [ScriptStep(1, ctor(path, _random_path(rng)))]


def _fd_fragment(op: str, case: str,
                 rng: random.Random) -> List[ScriptItem]:
    """read/write/pread/pwrite/lseek/close and the dirop handles."""
    if op in ("readdir", "rewinddir", "closedir"):
        dh = 37 if "bad" in case else 1
        cmd = {"readdir": C.Readdir, "rewinddir": C.Rewinddir,
               "closedir": C.Closedir}[op](dh)
        return ([] if "bad" in case
                else [ScriptStep(1, C.Mkdir("dd", 0o755)),
                      ScriptStep(1, C.Opendir("dd"))]) + \
            [ScriptStep(1, cmd)]
    fd = 37 if "bad" in case else 3
    offset = -rng.randint(1, 9) if "negative" in case \
        else rng.randint(0, 80)
    data = LONG_DATA if "partial" in case else rng.choice(tuple(DATA))
    count = 100 if "partial" in case else rng.randint(0, 32)
    cmd: Optional[C.OsCommand] = None
    if op == "read":
        cmd = C.Read(fd, count)
    elif op == "write":
        cmd = C.Write(fd, data)
    elif op == "pread":
        cmd = C.Pread(fd, count, offset)
    elif op == "pwrite":
        cmd = C.Pwrite(fd, data, offset)
    elif op == "lseek":
        cmd = C.Lseek(fd, rng.randint(-8, 40),
                      rng.choice(list(SeekWhence)))
    elif op == "close":
        cmd = C.Close(fd)
    if cmd is None:
        return [ScriptStep(1, _random_command(rng))]
    prefix = [] if "bad" in case else [
        ScriptStep(1, C.Open("io", OpenFlag.O_CREAT | OpenFlag.O_RDWR,
                             0o644)),
        ScriptStep(1, C.Write(3, LONG_DATA))]
    return prefix + [ScriptStep(1, cmd)]


def _perm_fragment(op: str, case: str,
                   rng: random.Random) -> List[ScriptItem]:
    """Permission cases need an unprivileged second process."""
    inner = _path_command(op, "pd/t", rng) or C.Open(
        "pd/t", OpenFlag.O_RDONLY, 0o644)
    mode = 0o755 if "not_owner" in case or "not_permitted" in case \
        else rng.choice((0o000, 0o600))
    return [ScriptStep(1, C.Mkdir("pd", 0o755)),
            ScriptStep(1, C.Chmod("pd", mode)),
            CreateEvent(pid=9, uid=1000, gid=1000),
            ScriptStep(9, inner),
            DestroyEvent(pid=9)]


_PERM_KEYWORDS = ("permission", "not_owner", "not_permitted",
                  "not_writable", "not_readable", "access")
_FD_OPS = ("read", "write", "pread", "pwrite", "lseek", "close",
           "readdir", "rewinddir", "closedir")


def _t_dirops(rng: random.Random) -> List[ScriptItem]:
    """The directory-stream protocol end to end (dirops.* clauses)."""
    return [ScriptStep(1, C.Mkdir("dd", 0o755))] + _mkfile("dd/x") + [
        ScriptStep(1, C.Opendir("dd")),
        ScriptStep(1, C.Readdir(1)),
        ScriptStep(1, C.Unlink("dd/x")),
        ScriptStep(1, C.Readdir(1)),
        ScriptStep(1, C.Rewinddir(1)),
        ScriptStep(1, C.Readdir(1)),
        ScriptStep(1, C.Closedir(1))]


def template_for(clause: str,
                 rng: random.Random) -> List[ScriptItem]:
    """A script fragment engineered toward ``clause``."""
    parts = clause.split(".")
    family, rest = parts[0], parts[1:]
    if family == "dirops":
        return _t_dirops(rng)
    if family == "pathres":
        case = ".".join(rest)
        prefix, path = _case_path(case or "symlink", rng)
        op = rng.choice(("stat", "open", "mkdir", "unlink", "opendir"))
        if any(k in case for k in _PERM_KEYWORDS):
            return _perm_fragment(op, case, rng)
        cmd = _path_command(op, path, rng)
        return prefix + [ScriptStep(1, cmd)] if cmd else prefix
    if family in ("fsop", "osapi") and rest:
        op, case = rest[0], ".".join(rest[1:])
        if "nospc" in case:
            return _mkfile("big") + [
                ScriptStep(1, C.Truncate("big", 200_000))]
        if op in _FD_OPS:
            return _fd_fragment(op, case, rng)
        if any(k in case for k in _PERM_KEYWORDS):
            return _perm_fragment(op, case, rng)
        if op in ("link", "rename"):
            prefix, path = _case_path(case, rng)
            return prefix + _two_path_command(op, case, path, rng)
        prefix, path = _case_path(case, rng)
        cmd = _path_command(op, path, rng)
        if cmd is not None:
            return prefix + [ScriptStep(1, cmd)]
    return [ScriptStep(1, _random_command(rng))]


def insert(script: Script, rng: random.Random,
           rare_clauses: Sequence[str] = ()) -> Script:
    """Insert a rare-clause template fragment at a random point."""
    if rare_clauses:
        fragment = template_for(rng.choice(list(rare_clauses)), rng)
    else:
        fragment = [ScriptStep(1, _random_command(rng))]
    index = rng.randint(0, len(script.items))
    items = list(script.items)
    items[index:index] = fragment
    return Script(name=script.name, items=sanitize(items))


def probe(rng: random.Random, rare_clauses: Sequence[str],
          name: str, fragments: int = 4) -> Script:
    """A from-scratch frontier probe: several rare-clause fragments
    concatenated (the dictionary-script move — no parent, pure
    frontier chasing; the corpus only keeps it if it lands)."""
    clauses = list(rare_clauses)
    picks = (rng.sample(clauses, min(fragments, len(clauses)))
             if clauses else [])
    items: List[ScriptItem] = []
    for clause in picks:
        items.extend(template_for(clause, rng))
    if not items:
        items = [ScriptStep(1, _random_command(rng))
                 for _ in range(4)]
    return Script(name=name, items=sanitize(items))


#: The operator table the loop draws from: ``(name, weight)``.
#: ``extend`` dominates because it preserves the parent prefix (cache
#: hits) and monotonically grows behaviour; ``insert`` is the targeted
#: coverage-seeking move.
OPERATOR_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("extend", 3), ("insert", 5), ("perturb", 2), ("splice", 2),
    ("drop", 1),
)


def mutate(script: Script, rng: random.Random, *,
           mate: Optional[Script] = None,
           rare_clauses: Sequence[str] = (),
           name: Optional[str] = None) -> Script:
    """One weighted-random mutation of ``script``.

    ``mate`` enables ``splice``; ``rare_clauses`` steers ``insert``.
    The mutant keeps the parent's name unless ``name`` is given (the
    loop stamps deterministic ``fuzz___…`` names).
    """
    names = [n for n, _ in OPERATOR_WEIGHTS
             if n != "splice" or mate is not None]
    weights = [w for n, w in OPERATOR_WEIGHTS
               if n != "splice" or mate is not None]
    from repro.analysis.absint import rejects

    out = script
    for _ in range(3):
        op = rng.choices(names, weights=weights, k=1)[0]
        if op == "extend":
            out = extend(script, rng)
        elif op == "insert":
            out = insert(script, rng, rare_clauses)
        elif op == "perturb":
            out = perturb(script, rng)
        elif op == "splice":
            out = splice(script, mate, rng)
        else:
            out = drop(script, rng)
        # Pre-execution triage: a mutant whose every call is provably
        # doomed (abstract interpretation) would spend its whole trace
        # budget on error paths — redraw, keeping the last attempt so
        # mutation never stalls.
        if not rejects(out):
            break
    if name is not None:
        out = Script(name=name, items=out.items)
    return out
