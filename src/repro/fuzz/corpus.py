"""The fuzzing corpus: scripts annotated with coverage and verdicts.

A :class:`CorpusEntry` is one script the loop has already run, carrying
its *coverage fingerprint* (the specification clauses checking that
script's trace evaluated) and its *verdict signals* (did any platform
reject the trace — quirk-triggering — and did platforms disagree —
cross-platform divergence).  The :class:`Corpus` keys entries by exact
script text (the same content address the campaign store uses for
traces), keeps a global per-clause hit count, and implements the
energy-based scheduler: an entry's energy is the sum of the *rarity* of
its clauses (``1 / corpus-wide hits``) plus bonuses for divergence and
deviation, so parent selection drifts toward scripts that touch what
the rest of the corpus does not.

Resume is structural: a campaign-store :class:`~repro.store.TraceRecord`
carries the trace text, its covered clauses and per-platform profiles —
everything an entry needs — and :func:`script_from_trace` recovers the
runnable script from the trace (calls become steps, create/destroy
events become directives).  The recovered script replays the *realized*
behaviour: commands of dead processes were skipped by the executor and
are absent from the trace, so a resumed corpus is exactly what was
durably observed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.script.ast import (CreateEvent, DestroyEvent, Script,
                              ScriptItem, ScriptStep, Trace)
from repro.core.labels import OsCall, OsCreate, OsDestroy, OsReturn
from repro.script.ast import TraceEvent
from repro.script.parser import parse_script
from repro.script.printer import print_script


def script_from_trace(trace: Trace) -> Script:
    """The script realizing a trace: its calls and process events."""
    items: List[ScriptItem] = []
    for event in trace.events:
        label = event.label
        if isinstance(label, OsCall):
            items.append(ScriptStep(pid=label.pid, cmd=label.cmd))
        elif isinstance(label, OsCreate):
            if label.pid == 1 and label.uid == 0 and label.gid == 0:
                # The executor creates p1 with these defaults
                # implicitly; keeping the directive out makes the
                # recovered text identical to scripts that relied on
                # the implicit creation (exact-text corpus dedup).
                continue
            items.append(CreateEvent(pid=label.pid, uid=label.uid,
                                     gid=label.gid))
        elif isinstance(label, OsDestroy):
            items.append(DestroyEvent(pid=label.pid))
    return Script(name=trace.name, items=tuple(items))


def overlap_schedule(trace: Trace) -> Trace:
    """Reorder a multi-process trace into an overlapping schedule.

    The executor serialises every call (CALL immediately followed by
    its RETURN); the *checker*, though, handles genuinely concurrent
    schedules — a call left pending while another process calls.  This
    helper delays each RETURN until just before its process's next
    event, so adjacent calls by different processes overlap
    (``CALL p1; CALL p2; RETURN p1; RETURN p2``) and checking walks the
    tau-closure machinery with two calls in flight.  Single-process
    traces come back unchanged.
    """
    events = list(trace.events)
    out: List[TraceEvent] = []
    pending: List[TraceEvent] = []  # delayed returns, in arrival order

    def flush(pid: Optional[int]) -> None:
        for held in list(pending):
            if pid is None or held.label.pid == pid:
                out.append(held)
                pending.remove(held)

    for event in events:
        label = event.label
        if isinstance(label, OsReturn):
            if pending and pending[-1].label.pid != label.pid:
                # Already overlapping in the source; keep order.
                flush(label.pid)
                out.append(event)
            else:
                pending.append(event)
            continue
        flush(label.pid)
        if len(pending) >= 2:
            # Never hold more than two calls open: the paper's
            # schedules are small, and bounded overlap keeps the
            # state-set exploration tractable.
            flush(None)
        out.append(event)
    flush(None)
    return Trace(name=trace.name, events=tuple(out))


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One already-run script with its coverage and verdict signals."""

    script_text: str
    name: str
    fingerprint: FrozenSet[str]
    divergent: bool = False
    deviating: bool = False

    @property
    def script(self) -> Script:
        return parse_script(self.script_text)


def entry_signals(profiles: Iterable) -> Tuple[bool, bool]:
    """``(divergent, deviating)`` from per-platform profiles."""
    accepted = [bool(p.accepted) for p in profiles]
    deviating = any(not a for a in accepted)
    divergent = deviating and any(accepted)
    return divergent, deviating


#: Energy bonuses: divergence is the strongest signal (a platform
#: disagreement is exactly what the survey hunts), deviation next.
DIVERGENCE_BONUS = 2.0
DEVIATION_BONUS = 0.5


class Corpus:
    """The deduplicated corpus plus the energy scheduler's statistics."""

    def __init__(self) -> None:
        self._entries: Dict[str, CorpusEntry] = {}
        self._clause_hits: Dict[str, int] = {}
        self._covered: set = set()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    @property
    def covered(self) -> FrozenSet[str]:
        """Union of every entry's fingerprint (the coverage frontier's
        complement)."""
        return frozenset(self._covered)

    def add(self, entry: CorpusEntry) -> bool:
        """Add an entry; returns False for an exact-script duplicate
        (its clause hits still count toward rarity)."""
        for clause in entry.fingerprint:
            self._clause_hits[clause] = \
                self._clause_hits.get(clause, 0) + 1
        self._covered.update(entry.fingerprint)
        if entry.script_text in self._entries:
            return False
        self._entries[entry.script_text] = entry
        return True

    def add_script(self, script: Script, covered: Iterable[str],
                   profiles: Iterable = ()) -> bool:
        divergent, deviating = entry_signals(profiles)
        return self.add(CorpusEntry(
            script_text=print_script(script), name=script.name,
            fingerprint=frozenset(covered), divergent=divergent,
            deviating=deviating))

    def energy(self, entry: CorpusEntry) -> float:
        """Rarity-weighted selection energy (higher = fitter parent)."""
        rarity = sum(1.0 / self._clause_hits.get(clause, 1)
                     for clause in entry.fingerprint)
        if entry.divergent:
            rarity += DIVERGENCE_BONUS
        elif entry.deviating:
            rarity += DEVIATION_BONUS
        return rarity

    def select(self, rng: random.Random, k: int) -> List[CorpusEntry]:
        """``k`` energy-weighted parents (with replacement: a very fit
        entry may parent several mutants of one batch)."""
        entries = list(self._entries.values())
        if not entries:
            return []
        weights = [max(self.energy(e), 1e-6) for e in entries]
        return rng.choices(entries, weights=weights, k=k)

    def scripts(self) -> List[Script]:
        """Every corpus script, in insertion order."""
        return [entry.script for entry in self._entries.values()]
