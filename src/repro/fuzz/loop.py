"""The coverage-guided fuzzing loop.

One iteration is one ordinary checking pass: select energy-weighted
parents from the corpus, mutate them (:mod:`repro.fuzz.mutate`), and
drive the batch through a fresh :class:`~repro.api.Session` — plans,
executor, oracles, backends (sharded and served included) and the
campaign store all behave exactly as they do for any other suite; the
fuzzer adds nothing to the checking path.  The per-script
:class:`~repro.api.RunRecord` stream feeds the corpus: coverage
fingerprints update clause rarity, verdict signals (deviation,
cross-platform divergence) add energy, and the per-platform frontier
(reachable-but-unhit clauses) steers the ``insert`` operator's
rare-clause templates.

Determinism: one seeded :class:`random.Random` drives selection and
mutation, serial execution/checking is deterministic, and script names
are stamped ``fuzz___s<seed>_i<iteration>_<k>`` — the same seed and
budget reproduce the same corpus and the same frontier history
bit-for-bit (CI asserts this).

Persistence: give ``store=`` and every verdict streams into the
campaign store under the session's usual partition; on the next run
the loop folds those rows back into the corpus (traces → scripts via
:func:`~repro.fuzz.corpus.script_from_trace`) before fuzzing, so a
campaign resumes where it stopped.  The ``fuzz`` store view
(:mod:`repro.fuzz.view`) tracks the same frontier incrementally.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.session import Session
from repro.core.coverage import REGISTRY
from repro.core.platform import real_platforms
from repro.fsimpl.quirks import Quirks
from repro.fsimpl.configs import config_by_name
from repro.fuzz.corpus import Corpus, script_from_trace
from repro.fuzz.mutate import mutate, probe
from repro.gen.registry import REGISTRY as STRATEGIES
from repro.harness.backends import Backend, make_backend
from repro.oracle import oracle_name_for
from repro.script.ast import Script
from repro.script.parser import parse_trace
from repro.store import CampaignStore, TraceRecord

#: The scenario families seeding a fresh corpus: fault injection,
#: crash/recovery prefixes, multi-process interleavings.
SEED_STRATEGIES: Tuple[str, ...] = ("fault", "crash_recovery",
                                    "interleaving")


@dataclasses.dataclass(frozen=True)
class FuzzReport:
    """What a fuzzing run produced, JSON-serialisable for CI."""

    config: str
    model: str
    platforms: Tuple[str, ...]
    seed: int
    iterations: int
    history: Tuple[dict, ...]
    covered: Tuple[str, ...]
    frontier: Dict[str, List[str]]
    corpus_size: int
    corpus_texts: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "model": self.model,
            "platforms": list(self.platforms),
            "seed": self.seed,
            "iterations": self.iterations,
            "history": list(self.history),
            "covered": list(self.covered),
            "covered_clauses": len(self.covered),
            "frontier": {p: list(c) for p, c in self.frontier.items()},
            "frontier_sizes": {p: len(c)
                               for p, c in self.frontier.items()},
            "corpus_size": self.corpus_size,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _resume_corpus(store: CampaignStore, partition: str) -> Corpus:
    """Fold a store partition's rows back into a corpus."""
    corpus = Corpus()
    for _cursor, record in store.records():
        if not isinstance(record, TraceRecord):
            continue
        if record.partition != partition:
            continue
        trace = parse_trace(record.trace_text, name=record.name)
        corpus.add_script(script_from_trace(trace), record.covered,
                          record.profiles)
    return corpus


def run_fuzz(config: Union[str, Quirks], *,
             platforms: Optional[Sequence[str]] = None,
             iterations: int = 8,
             batch: int = 8,
             seed: int = 0,
             store: Optional[Union[CampaignStore, str]] = None,
             backend: Optional[Union[Backend, str]] = None,
             processes: Optional[int] = None,
             shards: Optional[int] = None,
             chunksize: Optional[int] = None,
             seed_strategies: Sequence[str] = SEED_STRATEGIES,
             progress=None) -> FuzzReport:
    """Run the coverage-guided loop and return its report.

    ``platforms`` defaults to every real modelled platform so the
    divergence signal (platforms disagreeing about one trace) is
    available; the first entry (default: the configuration's own
    platform) is the primary model.  ``progress`` is called as
    ``progress(iteration, total_iterations, stats_dict)`` after each
    iteration.
    """
    # Statically-dead clauses leave the frontier before the first
    # iteration: probing them would be guaranteed-wasted energy, and
    # the coverage reports must agree bit-for-bit with this view.
    from repro.analysis.dead import install_dead_clauses
    install_dead_clauses()

    quirks = (config if isinstance(config, Quirks)
              else config_by_name(config))
    if platforms is None:
        primary = (quirks.platform if quirks.platform
                   in real_platforms() else "posix")
        platform_list = [primary] + [p for p in real_platforms()
                                     if p != primary]
    else:
        platform_list = list(platforms)
    model, check_on = platform_list[0], platform_list[1:]
    partition = f"{quirks.name}:{oracle_name_for(platform_list)}"

    owns_store = isinstance(store, str)
    store_obj: Optional[CampaignStore] = (
        CampaignStore(store) if owns_store else store)
    owns_backend = backend is None or isinstance(backend, str)
    backend_obj = (make_backend(processes or 1, chunksize=chunksize,
                                backend=backend
                                if isinstance(backend, str) else None,
                                shards=shards)
                   if owns_backend else backend)

    rng = random.Random(seed)
    corpus = (Corpus() if store_obj is None
              else _resume_corpus(store_obj, partition))
    resumed = len(corpus)
    history: List[dict] = []

    def run_batch(suite: Sequence[Script]) -> int:
        """One checking pass; returns how many scripts were new."""
        session = Session(quirks, model, check_on=check_on,
                          suite=list(suite), backend=backend_obj,
                          collect_coverage=True, store=store_obj)
        added = 0
        for record in session.iter_records():
            # Enter the corpus in *realized* form (recovered from the
            # trace, auto-created pids explicit): byte-identical to
            # what a store resume recovers, so dedup survives restarts.
            script = script_from_trace(record.outcome.checked.trace)
            if corpus.add_script(script, record.outcome.covered,
                                 record.outcome.profiles):
                added += 1
        return added

    try:
        for iteration in range(iterations):
            if len(corpus) == 0:
                # Iteration 0 of a fresh campaign: the scenario seeds.
                suite: List[Script] = []
                for name in seed_strategies:
                    suite.extend(STRATEGIES.get(name).scripts())
            else:
                frontier = REGISTRY.frontier(corpus.covered,
                                             platform_list)
                rare: List[str] = sorted(
                    {clause for clauses in frontier.values()
                     for clause in clauses})
                # A slice of each batch goes to from-scratch frontier
                # probes (rare-clause fragments, no parent); the rest
                # are energy-selected mutants.
                probes = max(1, batch // 4) if rare else 0
                parents = corpus.select(rng, batch - probes)
                mates = corpus.select(rng, batch - probes)
                suite = [
                    mutate(parent.script, rng, mate=mates[k].script,
                           rare_clauses=rare,
                           name=f"fuzz___s{seed}_i{iteration}_{k}")
                    for k, parent in enumerate(parents)]
                suite.extend(
                    probe(rng, rare,
                          name=f"fuzz___s{seed}_i{iteration}_p{k}")
                    for k in range(probes))
            added = run_batch(suite)
            frontier = REGISTRY.frontier(corpus.covered, platform_list)
            stats = {
                "iteration": iteration,
                "scripts": len(suite),
                "new": added,
                "corpus_size": len(corpus),
                "covered_clauses": len(corpus.covered),
                "frontier_sizes": {p: len(c)
                                   for p, c in frontier.items()},
                "divergent": sum(1 for e in corpus if e.divergent),
            }
            history.append(stats)
            if store_obj is not None:
                store_obj.refresh_view("fuzz")
            if progress is not None:
                progress(iteration + 1, iterations, stats)
    finally:
        if owns_backend:
            backend_obj.close()
        if owns_store and store_obj is not None:
            store_obj.close()

    frontier = REGISTRY.frontier(corpus.covered, platform_list)
    if resumed:
        history.insert(0, {"iteration": -1, "scripts": 0,
                           "new": resumed, "corpus_size": resumed,
                           "resumed": True})
    return FuzzReport(
        config=quirks.name, model=model,
        platforms=tuple(platform_list), seed=seed,
        iterations=iterations, history=tuple(history),
        covered=tuple(sorted(corpus.covered)),
        frontier=frontier,
        corpus_size=len(corpus),
        corpus_texts=tuple(entry.script_text for entry in corpus))
