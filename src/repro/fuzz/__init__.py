"""``repro.fuzz`` — coverage-guided scenario fuzzing.

The fuzzer closes the loop the paper leaves open: generation is
feedback-free (combinatorial products, handwritten scripts, blind
randomness), yet checking already *measures* which specification
clauses each trace evaluates.  This package feeds that measurement
back: a corpus of scripts annotated with coverage fingerprints and
verdict signals (:mod:`repro.fuzz.corpus`), AST-level mutation
operators (:mod:`repro.fuzz.mutate`), and an energy-based loop
(:mod:`repro.fuzz.loop`) that steers mutation toward rare clauses and
cross-platform divergence.  Every mutant flows through the ordinary
:class:`~repro.api.Session` pipeline — plans, executor, oracles,
serial/pooled/sharded/served backends, the parity harness — with zero
special cases, and a campaign store persists the corpus so ``repro
fuzz --store`` resumes across restarts.

Importing this package registers the ``fuzz`` campaign-store view
(:mod:`repro.fuzz.view`) — the view-plugin analogue of registering a
generation strategy.
"""

from repro.fuzz.corpus import (Corpus, CorpusEntry, overlap_schedule,
                               script_from_trace)
from repro.fuzz.loop import (SEED_STRATEGIES, FuzzReport, run_fuzz)
from repro.fuzz.mutate import (OPERATOR_WEIGHTS, drop, extend, insert,
                               mutate, perturb, sanitize, splice)
from repro.fuzz.view import FuzzView
from repro.store import VIEWS, register_view

if "fuzz" not in VIEWS:
    register_view(FuzzView())

__all__ = [
    "Corpus",
    "CorpusEntry",
    "FuzzReport",
    "FuzzView",
    "OPERATOR_WEIGHTS",
    "SEED_STRATEGIES",
    "drop",
    "extend",
    "insert",
    "mutate",
    "overlap_schedule",
    "perturb",
    "run_fuzz",
    "sanitize",
    "script_from_trace",
    "splice",
]
