"""Minimal in-tree PEP 517 build backend.

The execution environment has no network access and a setuptools without
the ``wheel`` package, so the standard backends cannot produce the PEP 660
editable wheel that ``pip install -e .`` requires.  This backend builds
the needed wheels directly with the standard library:

* ``build_editable`` — a wheel containing a ``.pth`` file pointing at
  ``src/`` (the classic editable mechanism);
* ``build_wheel`` — a regular wheel bundling ``src/repro``.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "0.1.0"
TAG = "py3-none-any"
DIST_INFO = f"{NAME}-{VERSION}.dist-info"

METADATA = f"""\
Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: SibylFS reproduction: executable POSIX file-system specification and test oracle
Requires-Python: >=3.9
"""

WHEEL_META = f"""\
Wheel-Version: 1.0
Generator: repro-in-tree-backend
Root-Is-Purelib: true
Tag: {TAG}
"""


def _record_line(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(
        hashlib.sha256(data).digest()).rstrip(b"=").decode("ascii")
    return f"{name},sha256={digest},{len(data)}"


def _write_wheel(path: str, files: dict) -> None:
    record_name = f"{DIST_INFO}/RECORD"
    lines = [_record_line(name, data) for name, data in files.items()]
    lines.append(f"{record_name},,")
    files = dict(files)
    files[record_name] = ("\n".join(lines) + "\n").encode("utf-8")
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, data in files.items():
            zf.writestr(name, data)


def _dist_info_files() -> dict:
    return {
        f"{DIST_INFO}/METADATA": METADATA.encode("utf-8"),
        f"{DIST_INFO}/WHEEL": WHEEL_META.encode("utf-8"),
    }


def build_editable(wheel_directory, config_settings=None,
                   metadata_directory=None):
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "src"))
    files = _dist_info_files()
    files[f"_{NAME}_editable.pth"] = (src + "\n").encode("utf-8")
    filename = f"{NAME}-{VERSION}-{TAG}.whl"
    _write_wheel(os.path.join(wheel_directory, filename), files)
    return filename


def build_wheel(wheel_directory, config_settings=None,
                metadata_directory=None):
    root = os.path.join(os.path.dirname(__file__), "src")
    files = _dist_info_files()
    for dirpath, _dirnames, filenames in os.walk(root):
        for fname in sorted(filenames):
            if fname.endswith((".pyc", ".pyo")):
                continue
            full = os.path.join(dirpath, fname)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, "rb") as fh:
                files[rel] = fh.read()
    filename = f"{NAME}-{VERSION}-{TAG}.whl"
    _write_wheel(os.path.join(wheel_directory, filename), files)
    return filename


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []
